"""The tunable set-similarity index (Sections 3-5, end to end).

``SetSimilarityIndex`` is the system the paper evaluates: it
preprocesses a set collection into Hamming embeddings, plans filter
placement and budget allocation with the Section 5 optimizer, builds
the planned SFI/DFI structures over simulated disk pages, and answers
similarity range queries with the Section 4.3 candidate plans followed
by exact verification against sets fetched through the B-tree.

Dynamic maintenance (insert/delete of whole sets) is supported, as the
paper claims for the hash-based primitives.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.distribution import SimilarityDistribution
from repro.core.embedding import SetEmbedder
from repro.core.filter_index import DissimilarityFilterIndex, SimilarityFilterIndex
from repro.core.optimizer import SFI, IndexPlan, greedy_allocate, plan_index
from repro.core.similarity import jaccard
from repro.obs import events, metrics, trace
from repro.obs.explain import batch_probe_spans, probe_spans
from repro.obs.trace import Span
from repro.storage.iomodel import IOCostModel, IOStats
from repro.storage.pager import PageManager
from repro.storage.setstore import SetStore

logger = logging.getLogger(__name__)

_QUERIES = metrics.counter("query.count")
_QUERY_CANDIDATES = metrics.counter("query.candidates")
_QUERY_VERIFIED = metrics.counter("query.verified_hits")
_QUERY_FALSE_POSITIVES = metrics.counter("query.false_positives")
_CANDIDATES_PER_QUERY = metrics.histogram("query.candidates_per_query")
_QUERY_BATCHES = metrics.counter("query.batches")
_BATCH_SIZE = metrics.histogram("query.batch_size")
_BATCH_FETCHES_SAVED = metrics.counter("query.batch_fetches_saved")
# Shared with the hash-table layer: bucket pages a grouped batch probe
# avoided reading (several queries served from one bucket read).
_BATCH_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")
# Shared with the pager: buffer-pool hits, bracketed per query with the
# calling thread's shard (the sequential paths run on one thread).
_PAGER_CACHE_HITS = metrics.counter("pager.cache_hits")


class FrozenIndexError(RuntimeError):
    """Mutation of a frozen index, or a freeze the index cannot honor.

    A :meth:`SetSimilarityIndex.freeze` snapshot shares the index's
    bucket directories and packed vectors by reference; any
    insert/delete while a snapshot is live would silently corrupt it,
    so mutation raises this instead.  Call
    :meth:`SetSimilarityIndex.thaw` first.
    """


@dataclass
class QueryResult:
    """Outcome of one similarity range query.

    ``answers`` contains exactly the sets whose true similarity lies in
    the requested range among the retrieved candidates (verification is
    exact, so there are no false positives; filter false negatives may
    be missing).  ``candidates`` is the sid set the filters produced
    before verification -- its size is what the paper's precision
    metric measures against.

    ``n_candidates`` / ``n_verified`` carry those counts directly
    (derived automatically when not given, so existing construction
    sites keep working), and ``trace`` holds the root
    :class:`~repro.obs.trace.Span` when the query ran with tracing
    (``explain=True`` or an enclosing ``trace.capture``).

    ``timings`` maps pipeline phases (``embed`` / ``probe`` / ``fetch``
    / ``verify``, or ``scan``) to measured wall milliseconds.  It is
    host-dependent observability, not part of the answer: like
    ``trace`` it is excluded from equality, so bit-identical result
    comparisons across backends and worker counts are unaffected.
    """

    answers: list[tuple[int, float]]
    candidates: set[int]
    io: IOStats
    io_time: float
    cpu_time: float
    n_candidates: int = -1
    n_verified: int = -1
    trace: Span | None = field(default=None, repr=False, compare=False)
    timings: dict[str, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_candidates < 0:
            self.n_candidates = len(self.candidates)
        if self.n_verified < 0:
            self.n_verified = len(self.answers)

    @property
    def total_time(self) -> float:
        """Simulated response time: I/O plus CPU."""
        return self.io_time + self.cpu_time

    @property
    def answer_sids(self) -> set[int]:
        """The answer set identifiers (without similarities)."""
        return {sid for sid, _ in self.answers}


@dataclass
class BatchQueryResult:
    """Outcome of one batched similarity range query.

    ``results[i]`` answers ``queries[i]`` with exactly the answers and
    candidates a standalone :meth:`SetSimilarityIndex.query` would have
    produced.  I/O is a *batch-level* quantity: grouped probes and
    deduplicated candidate fetches share page reads across queries, so
    per-query attribution would be arbitrary -- the inner results carry
    zeroed I/O fields and the real totals live here.

    ``pages_saved`` counts bucket pages the grouped probes did not read
    (versus looping :meth:`~SetSimilarityIndex.query`); ``fetches_saved``
    counts candidate fetches avoided because a candidate was shared by
    several queries of the batch.
    """

    results: list[QueryResult]
    io: IOStats
    io_time: float
    cpu_time: float
    pages_saved: int = 0
    fetches_saved: int = 0
    trace: Span | None = field(default=None, repr=False, compare=False)
    #: Executor-side timing detail (per-stage task durations, worker
    #: count) when the batch ran through a
    #: :class:`~repro.exec.parallel.ParallelExecutor`; None otherwise.
    #: Wall-clock only -- excluded from equality like ``trace``.
    exec_stats: dict | None = field(default=None, repr=False, compare=False)
    #: Batch-level phase wall milliseconds (``embed`` / ``probe`` /
    #: ``fetch`` / ``verify``, or ``scan``); same contract as
    #: :attr:`QueryResult.timings`.
    timings: dict[str, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_queries(self) -> int:
        return len(self.results)

    @property
    def total_time(self) -> float:
        """Simulated response time of the whole batch: I/O plus CPU."""
        return self.io_time + self.cpu_time

    @property
    def n_candidates(self) -> int:
        """Candidate count summed over the batch."""
        return sum(r.n_candidates for r in self.results)

    @property
    def n_verified(self) -> int:
        """Verified answer count summed over the batch."""
        return sum(r.n_verified for r in self.results)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> QueryResult:
        return self.results[i]


class SetSimilarityIndex:
    """Approximate index for Jaccard-similarity range queries over sets.

    Build with :meth:`build`; query with :meth:`query` /
    :meth:`query_above` / :meth:`query_below`.

    Parameters of :meth:`build`
    ---------------------------
    sets:
        The collection to index.
    budget:
        Total number of hash tables the optimizer may spend (the
        paper's space constraint; its experiments use 500 and 1000).
    recall_target:
        Expected worst-case recall floor ``T`` for the construction
        algorithm.
    k, b:
        Min-hash signature length and bits of precision per value
        (embedding dimensionality is ``2**b * k``).
    sample_pairs:
        If given, estimate the similarity distribution from this many
        sampled pairs (Lemma 1) instead of all pairs.
    workers:
        Thread-pool width for the bulk filter build (plans for the
        independent (filter, table) units are computed concurrently;
        the pager replay stays sequential).  Any value >= 1 yields a
        bit-identical index.
    """

    def __init__(
        self,
        embedder: SetEmbedder,
        plan: IndexPlan,
        distribution: SimilarityDistribution,
        pager: PageManager,
        store: SetStore,
    ):
        self.embedder = embedder
        self.plan = plan
        self.distribution = distribution
        self.pager = pager
        self.io = pager.io
        self.store = store
        self._vectors: dict[int, np.ndarray] = {}
        self._sizes: dict[int, int] = {}
        # Columnar verification state: per sid the sorted uint64
        # element-hash array, plus the sids whose array is unusable
        # because two distinct elements collided (exact fallback).
        self._chashes: dict[int, np.ndarray] = {}
        self._cfallback: set[int] = set()
        self._sfis: dict[float, SimilarityFilterIndex] = {}
        self._dfis: dict[float, DissimilarityFilterIndex] = {}
        self._planner = None
        self._frozen = None

    #: Verify candidates with the vectorized sorted-hash kernels
    #: (:mod:`repro.exec.columnar`).  Set False on an instance to force
    #: the legacy per-candidate ``frozenset`` loop -- same answers and
    #: accounting, slower wall clock (kept for benchmarking).
    columnar_verify = True

    #: Report of the bulk build that materialized this index (phase
    #: timings, per-unit plan times, totals; see
    #: :func:`repro.exec.build.bulk_load_filters`), or None for
    #: per-insert builds and indexes loaded from older files.
    build_report: dict | None = None
    #: Root build span when the index was built under tracing
    #: (``explain=True`` or an enclosing ``trace.capture``); not
    #: persisted by :meth:`save`.
    build_trace = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        sets: Sequence[Iterable],
        budget: int = 500,
        recall_target: float = 0.9,
        k: int = 100,
        b: int = 6,
        seed: int = 0,
        sample_pairs: int | None = None,
        n_bins: int = 100,
        max_intervals: int | None = None,
        io: IOCostModel | None = None,
        allocator=greedy_allocate,
        max_per_filter: int | None = None,
        workers: int = 1,
        explain: bool = False,
        codec: str = "full64",
    ) -> "SetSimilarityIndex":
        from repro.core.codec import parse_codec

        spec = parse_codec(codec)
        sets = [frozenset(s) for s in sets]
        logger.info(
            "building index: %d sets, budget=%d, recall_target=%.2f, k=%d, b=%d, codec=%s",
            len(sets), budget, recall_target, k, b, spec.name,
        )
        io = io if io is not None else IOCostModel()
        with trace.capture(
            "build", io=io, force=explain, n_sets=len(sets), workers=workers
        ) as root:
            t0 = time.perf_counter()
            with trace.span(
                "estimate_distribution",
                n_bins=n_bins,
                sample_pairs=sample_pairs,
            ):
                dist = SimilarityDistribution.from_sets(
                    sets, n_bins=n_bins, sample_pairs=sample_pairs, seed=seed
                )
            dist_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            with trace.span("plan_index", budget=budget):
                # b-bit packing has exact per-bit agreement (1+s)/2, so
                # its error curves use the uncorrected Theorem-1 form;
                # full64 keeps the Hadamard collision bias.
                plan = plan_index(
                    dist,
                    budget,
                    recall_target=recall_target,
                    b=spec.bias_bits(b),
                    max_intervals=max_intervals,
                    allocator=allocator,
                    max_per_filter=max_per_filter,
                )
            plan_seconds = time.perf_counter() - t0
            logger.info(
                "planned %d intervals over %d tables (expected recall %.3f)",
                plan.n_intervals, plan.tables_used, plan.expected_recall,
            )
            index = cls.from_plan(
                sets, plan, dist, k=k, b=b, seed=seed, io=io, workers=workers,
                codec=codec,
            )
        if index.build_report is not None:
            index.build_report["phases"] = {
                "estimate_distribution_seconds": round(dist_seconds, 6),
                "plan_index_seconds": round(plan_seconds, 6),
                **index.build_report.get("phases", {}),
            }
        if root is not None:
            index.build_trace = root
        return index

    @classmethod
    def from_plan(
        cls,
        sets: Sequence[Iterable],
        plan: IndexPlan,
        distribution: SimilarityDistribution,
        k: int = 100,
        b: int = 6,
        seed: int = 0,
        io: IOCostModel | None = None,
        workers: int = 1,
        explain: bool = False,
        build_method: str = "bulk",
        codec: str = "full64",
    ) -> "SetSimilarityIndex":
        """Materialize an index from an explicit plan.

        Used by ablation experiments that bypass or modify the Fig. 4
        optimizer (e.g. SFI-only placement, uniform allocation).

        ``build_method="bulk"`` (default) loads the filter tables
        through the vectorized bucket-partitioned pipeline
        (:func:`repro.exec.build.bulk_load_filters`, ``workers`` wide);
        ``"insert"`` keeps the legacy per-entry loop.  Both produce
        bit-identical indexes; the bulk build also attaches
        :attr:`build_report`.
        """
        from repro.exec.build import bulk_load_filters

        if build_method not in ("bulk", "insert"):
            raise ValueError(f"unknown build_method: {build_method!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        sets = [frozenset(s) for s in sets]
        io = io if io is not None else IOCostModel()
        pager = PageManager(io)
        store = SetStore(pager)
        embedder = SetEmbedder(k=k, b=b, seed=seed, codec=codec)
        index = cls(embedder, plan, distribution, pager, store)
        with trace.capture(
            "build_index",
            io=io,
            force=explain,
            n_sets=len(sets),
            workers=workers,
            method=build_method,
        ) as root:
            index._materialize_filters(
                expected_entries=max(1, len(sets)), seed=seed
            )
            t0 = time.perf_counter()
            with trace.span("store_load", n_sets=len(sets)):
                sids = store.insert_many(sets)
            store_seconds = time.perf_counter() - t0
            filter_report = None
            embed_seconds = 0.0
            if sets:
                t0 = time.perf_counter()
                with trace.span("embed_corpus", k=k, n_sets=len(sets)):
                    matrix = embedder.embed_many(sets)
                    for sid, row, elements in zip(sids, matrix, sets):
                        index._vectors[sid] = row
                        index._sizes[sid] = len(elements)
                        index._set_chash(sid, elements)
                embed_seconds = time.perf_counter() - t0
                if build_method == "bulk":
                    filter_report = bulk_load_filters(
                        list(index._all_filters()), matrix, sids,
                        workers=workers,
                    )
                else:
                    for fi in index._all_filters():
                        fi.insert_many(matrix, sids, method="insert")
        if build_method == "bulk":
            index.build_report = {
                "n_sets": len(sets),
                "phases": {
                    "store_load_seconds": round(store_seconds, 6),
                    "embed_corpus_seconds": round(embed_seconds, 6),
                },
                "filters": filter_report,
            }
        index.build_trace = root
        logger.debug(
            "materialized %d SFIs + %d DFIs over %d sets",
            len(index._sfis), len(index._dfis), len(sets),
        )
        return index

    def _materialize_filters(self, expected_entries: int, seed: int) -> None:
        n_bits = self.embedder.dimension
        for offset, planned in enumerate(self.plan.filters):
            if planned.n_tables <= 0:
                continue
            threshold = planned.hamming_threshold(self.embedder.bias_bits)
            args = dict(
                n_tables=planned.n_tables,
                n_bits=n_bits,
                pager=self.pager,
                expected_entries=expected_entries,
                seed=seed + 7919 * (offset + 1),
                sigma_point=planned.point,
            )
            if planned.kind == SFI:
                self._sfis[planned.point] = SimilarityFilterIndex(threshold, **args)
            else:
                self._dfis[planned.point] = DissimilarityFilterIndex(threshold, **args)

    def _all_filters(self):
        yield from self._sfis.values()
        yield from self._dfis.values()

    def _set_chash(self, sid: int, elements) -> None:
        """Maintain the columnar hash array (and fallback flag) for a set."""
        from repro.exec.columnar import hash_set

        arr, collided = hash_set(elements)
        self._chashes[sid] = arr
        if collided:
            self._cfallback.add(sid)

    # -- dynamic maintenance -------------------------------------------------

    def _invalidate(self) -> None:
        """Mutation entry point: refuse while frozen, else drop derived
        state (the cached cost-based planner)."""
        if self._frozen is not None:
            raise FrozenIndexError(
                "index is frozen by an active snapshot; call thaw() "
                "before insert/delete"
            )
        self._planner = None

    def insert(self, elements: Iterable) -> int:
        """Add a set to the collection and all filter structures.

        Raises :class:`FrozenIndexError` while a :meth:`freeze` snapshot
        is active.
        """
        self._invalidate()
        stored = frozenset(elements)
        sid = self.store.insert(stored)
        vector = self.embedder.embed(stored)
        self._vectors[sid] = vector
        self._sizes[sid] = len(stored)
        self._set_chash(sid, stored)
        for fi in self._all_filters():
            fi.insert(vector, sid)
        logger.debug("inserted sid=%d (%d elements)", sid, len(stored))
        return sid

    def delete(self, sid: int) -> None:
        """Remove a set from the collection and all filter structures.

        Raises :class:`FrozenIndexError` while a :meth:`freeze` snapshot
        is active.
        """
        if sid not in self._vectors:
            raise KeyError(f"unknown sid: {sid}")
        self._invalidate()
        vector = self._vectors.pop(sid)
        self._sizes.pop(sid, None)
        self._chashes.pop(sid, None)
        self._cfallback.discard(sid)
        for fi in self._all_filters():
            fi.delete(vector, sid)
        self.store.delete(sid)
        logger.debug("deleted sid=%d", sid)

    # -- snapshots ----------------------------------------------------------

    def freeze(self):
        """Produce (and pin) a read-only :class:`~repro.exec.snapshot.IndexSnapshot`.

        The snapshot pre-builds every bucket directory, packs the
        stored vectors into one matrix and materializes the columnar
        CSR verification layout, so it can serve ``query_batch`` from
        many threads (see :class:`~repro.exec.parallel.ParallelExecutor`)
        with accounting identical to this index's sequential path.
        While frozen, :meth:`insert`/:meth:`delete` raise
        :class:`FrozenIndexError`; call :meth:`thaw` to resume
        mutation (existing snapshots must then be discarded).
        Repeated calls return the same snapshot.
        """
        if self._frozen is None:
            from repro.exec.snapshot import IndexSnapshot

            self._frozen = IndexSnapshot.from_index(self)
        return self._frozen

    def thaw(self) -> None:
        """Release the active snapshot and allow mutation again."""
        self._frozen = None

    def save_snapshot(self, path) -> None:
        """Write a zero-copy mmap snapshot directory to ``path``.

        Freezes the index, serializes the frozen image via
        :func:`repro.exec.snapfile.save_snapshot` (aligned raw arrays
        plus a checksummed manifest), and restores the previous
        frozen/thawed state.  ``repro.exec.open_snapshot(path)`` then
        maps it back in O(ms) for thread- or process-backend serving.
        """
        from repro.exec.snapfile import save_snapshot

        was_frozen = self.frozen
        snapshot = self.freeze()
        try:
            save_snapshot(snapshot, path)
        finally:
            if not was_frozen:
                self.thaw()

    @property
    def frozen(self) -> bool:
        """Whether a :meth:`freeze` snapshot is currently active."""
        return self._frozen is not None

    @property
    def n_sets(self) -> int:
        """Number of currently indexed sets."""
        return len(self._vectors)

    @property
    def sids(self) -> set[int]:
        """Identifiers of the currently indexed sets."""
        return set(self._vectors)

    # -- query processing ------------------------------------------------------

    def query(
        self,
        elements: Iterable,
        sigma_low: float,
        sigma_high: float,
        strategy: str = "index",
        explain: bool = False,
    ) -> QueryResult:
        """All indexed sets with ``sigma_low <= sim <= sigma_high``.

        ``strategy="index"`` (default) implements the Section 4.3 query
        plans: pick the cut points minimally enclosing the range, probe
        the corresponding filter structures, difference/union the probe
        results, then fetch and verify every candidate exactly.

        ``strategy="scan"`` reads the whole collection sequentially
        (exact; recall 1).  ``strategy="auto"`` asks the cost-based
        :class:`~repro.core.planner.QueryPlanner` which is predicted
        cheaper for this range -- the per-query version of the paper's
        Section 6 crossover analysis.

        ``explain=True`` forces tracing for this query regardless of
        the global :func:`repro.obs.trace.set_enabled` switch; the
        resulting span tree is attached as ``result.trace`` and can be
        rendered with :func:`repro.obs.explain.render_trace` /
        :func:`repro.obs.explain.explain_json`.
        """
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(
                f"invalid similarity range [{sigma_low}, {sigma_high}]"
            )
        if strategy not in ("index", "scan", "auto"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        if strategy == "auto":
            strategy = self.planner().choose(sigma_low, sigma_high)
        wall0 = time.perf_counter()
        hits_before = _PAGER_CACHE_HITS.local_value
        timings: dict[str, float] = {}
        with trace.capture(
            "query",
            io=self.io,
            force=explain,
            strategy=strategy,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
        ) as root:
            before = self.io.snapshot()
            query_set = frozenset(elements)
            if strategy == "scan":
                t0 = time.perf_counter()
                candidates, answers = self._scan_query(
                    query_set, sigma_low, sigma_high
                )
                timings["scan"] = (time.perf_counter() - t0) * 1e3
            else:
                t0 = time.perf_counter()
                candidates = self._candidates(
                    query_set, sigma_low, sigma_high, timings=timings
                )
                # The candidates stage is embed + probe; report probe
                # as its remainder after the measured embed slice.
                timings["probe"] = max(
                    0.0,
                    (time.perf_counter() - t0) * 1e3
                    - timings.get("embed", 0.0),
                )
                t0 = time.perf_counter()
                answers = self._verify(
                    query_set, candidates, sigma_low, sigma_high,
                    timings=timings,
                )
                timings["verify"] = max(
                    0.0,
                    (time.perf_counter() - t0) * 1e3
                    - timings.get("fetch", 0.0),
                )
            delta = self.io.snapshot() - before
            result = QueryResult(
                answers=answers,
                candidates=candidates,
                io=delta,
                io_time=self.io.io_time(delta),
                cpu_time=self.io.cpu_time(delta),
                trace=root,
                timings=timings,
            )
            if root is not None:
                self._annotate_trace(root, result)
        events.record_query(
            "query",
            latency_ms=(time.perf_counter() - wall0) * 1e3,
            sim_time=result.total_time,
            n_queries=1,
            n_candidates=result.n_candidates,
            n_verified=result.n_verified,
            pages_read=delta.random_reads + delta.sequential_reads,
            cache_hits=_PAGER_CACHE_HITS.local_value - hits_before,
            backend="sequential",
            workers=1,
            strategy=strategy,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            timings=timings,
        )
        _QUERIES.inc()
        _QUERY_CANDIDATES.inc(result.n_candidates)
        _QUERY_VERIFIED.inc(result.n_verified)
        _QUERY_FALSE_POSITIVES.inc(result.n_candidates - result.n_verified)
        _CANDIDATES_PER_QUERY.observe(result.n_candidates)
        logger.debug(
            "query [%.3f, %.3f] strategy=%s: %d answers / %d candidates, "
            "simulated time %.1f",
            sigma_low, sigma_high, strategy,
            result.n_verified, result.n_candidates, result.total_time,
        )
        return result

    def _annotate_trace(self, root: Span, result: QueryResult) -> None:
        """Post-query trace enrichment: totals on the root span and
        per-probe survivor counts (candidates a filter contributed that
        passed exact verification)."""
        root.set(
            n_candidates=result.n_candidates,
            n_verified=result.n_verified,
            io_time=result.io_time,
            cpu_time=result.cpu_time,
            total_time=result.total_time,
        )
        if result.timings:
            root.set(timings={
                phase: round(ms, 3) for phase, ms in result.timings.items()
            })
        answer_sids = result.answer_sids
        for span in probe_spans(root):
            sids = span.attrs.get("_sids")
            if sids is not None:
                span.set(survived=len(sids & answer_sids))

    def planner(self) -> "QueryPlanner":
        """The cost-based planner for this index.

        Built lazily from catalog statistics (set sizes tracked at
        insert time, heap page counts) and invalidated by updates.
        """
        from repro.core.planner import QueryPlanner

        if self._planner is None:
            avg_size = (
                float(np.mean(list(self._sizes.values()))) if self._sizes else 1.0
            )
            self._planner = QueryPlanner(
                plan=self.plan,
                distribution=self.distribution,
                io=self.io,
                n_sets=self.n_sets,
                heap_pages=self.store.n_pages,
                avg_set_size=avg_size,
            )
        return self._planner

    def _scan_query(
        self, query_set: frozenset, sigma_low: float, sigma_high: float
    ) -> tuple[set[int], list[tuple[int, float]]]:
        """Exact evaluation by sequential scan of the set store."""
        with trace.span("scan", n_pages=self.store.n_pages) as sp:
            answers: list[tuple[int, float]] = []
            candidates: set[int] = set()
            for sid, stored in self.store.scan():
                candidates.add(sid)
                self.io.cpu(len(stored) + len(query_set))
                similarity = jaccard(stored, query_set)
                if sigma_low <= similarity <= sigma_high:
                    answers.append((sid, similarity))
            answers.sort(key=lambda pair: (-pair[1], pair[0]))
            sp.set(n_candidates=len(candidates), n_verified=len(answers))
            return candidates, answers

    def query_above(self, elements: Iterable, sigma: float) -> QueryResult:
        """Sets at least ``sigma``-similar to the query."""
        return self.query(elements, sigma, 1.0)

    def query_below(self, elements: Iterable, sigma: float) -> QueryResult:
        """Sets at most ``sigma``-similar to the query."""
        return self.query(elements, 0.0, sigma)

    # -- batched query processing ---------------------------------------------

    def query_batch(
        self,
        queries: Sequence[Iterable],
        sigma_low: float,
        sigma_high: float,
        strategy: str = "index",
        explain: bool = False,
    ) -> BatchQueryResult:
        """Answer many queries over one shared range in a single pass.

        Semantically equivalent to ``[self.query(q, sigma_low,
        sigma_high) for q in queries]`` -- each query's answers,
        candidates and counts are identical -- but executed batch-wise:

        1. all query sets are embedded through one vectorized
           minhash + ECC pass (:meth:`SetEmbedder.embed_many`);
        2. every filter index of the plan is probed once for the whole
           batch with grouped bucket lookups, so a bucket page shared
           by several queries is read once instead of once per query;
        3. candidates are fetched once per *distinct* candidate and
           verified exactly; the packed-matrix Hamming kernel
           (:func:`~repro.hamming.distance.hamming_similarity_matrix`)
           computes every pair's estimated similarity in one popcount
           pass, which orders verification and feeds the batch EXPLAIN
           aggregates (answer membership stays exactly verified).

        The batch's simulated page-read total is therefore never
        greater than the equivalent query loop, and strictly smaller
        whenever queries share buckets or candidates.  Accounted CPU
        work is identical to the loop.  ``strategy`` and ``explain``
        behave as in :meth:`query`; with ``strategy="scan"`` the whole
        collection is read once for the entire batch.
        """
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(
                f"invalid similarity range [{sigma_low}, {sigma_high}]"
            )
        if strategy not in ("index", "scan", "auto"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        if strategy == "auto":
            strategy = self.planner().choose(sigma_low, sigma_high)
        query_sets = [frozenset(q) for q in queries]
        saved_before = _BATCH_PAGES_SAVED.local_value
        hits_before = _PAGER_CACHE_HITS.local_value
        wall0 = time.perf_counter()
        timings: dict[str, float] = {}
        with trace.capture(
            "query_batch",
            io=self.io,
            force=explain,
            strategy=strategy,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            n_queries=len(query_sets),
        ) as root:
            before = self.io.snapshot()
            if strategy == "scan":
                t0 = time.perf_counter()
                candidates_list, answers_list = self._scan_query_batch(
                    query_sets, sigma_low, sigma_high
                )
                timings["scan"] = (time.perf_counter() - t0) * 1e3
                fetches_saved = 0
            else:
                t0 = time.perf_counter()
                candidates_list, matrix, rows = self._candidates_batch(
                    query_sets, sigma_low, sigma_high, timings=timings
                )
                timings["probe"] = max(
                    0.0,
                    (time.perf_counter() - t0) * 1e3
                    - timings.get("embed", 0.0),
                )
                t0 = time.perf_counter()
                answers_list, fetches_saved = self._verify_batch(
                    query_sets, candidates_list, sigma_low, sigma_high,
                    matrix, rows, timings=timings,
                )
                timings["verify"] = max(
                    0.0,
                    (time.perf_counter() - t0) * 1e3
                    - timings.get("fetch", 0.0),
                )
            delta = self.io.snapshot() - before
            if strategy == "scan":
                # One shared collection pass instead of one per query.
                pages_saved = (delta.random_reads + delta.sequential_reads) * max(
                    0, len(query_sets) - 1
                )
            else:
                pages_saved = _BATCH_PAGES_SAVED.local_value - saved_before
            batch = BatchQueryResult(
                results=[
                    QueryResult(
                        answers=answers,
                        candidates=candidates,
                        io=IOStats(),
                        io_time=0.0,
                        cpu_time=0.0,
                    )
                    for answers, candidates in zip(answers_list, candidates_list)
                ],
                io=delta,
                io_time=self.io.io_time(delta),
                cpu_time=self.io.cpu_time(delta),
                pages_saved=pages_saved,
                fetches_saved=fetches_saved,
                trace=root,
                timings=timings,
            )
            if root is not None:
                self._annotate_batch_trace(root, batch)
        events.record_query(
            "query_batch",
            latency_ms=(time.perf_counter() - wall0) * 1e3,
            sim_time=batch.total_time,
            n_queries=batch.n_queries,
            n_candidates=batch.n_candidates,
            n_verified=batch.n_verified,
            pages_read=delta.random_reads + delta.sequential_reads,
            cache_hits=_PAGER_CACHE_HITS.local_value - hits_before,
            backend="sequential",
            workers=1,
            strategy=strategy,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            timings=timings,
        )
        _QUERY_BATCHES.inc()
        _BATCH_SIZE.observe(batch.n_queries)
        _BATCH_FETCHES_SAVED.inc(fetches_saved)
        _QUERIES.inc(batch.n_queries)
        _QUERY_CANDIDATES.inc(batch.n_candidates)
        _QUERY_VERIFIED.inc(batch.n_verified)
        _QUERY_FALSE_POSITIVES.inc(batch.n_candidates - batch.n_verified)
        for result in batch.results:
            _CANDIDATES_PER_QUERY.observe(result.n_candidates)
        logger.debug(
            "query_batch [%.3f, %.3f] strategy=%s: %d queries, %d answers / "
            "%d candidates, %d bucket pages + %d fetches saved, "
            "simulated time %.1f",
            sigma_low, sigma_high, strategy, batch.n_queries,
            batch.n_verified, batch.n_candidates,
            batch.pages_saved, batch.fetches_saved, batch.total_time,
        )
        return batch

    def query_above_batch(
        self, queries: Sequence[Iterable], sigma: float, **kwargs
    ) -> BatchQueryResult:
        """Batched :meth:`query_above`: sets at least ``sigma``-similar."""
        return self.query_batch(queries, sigma, 1.0, **kwargs)

    def query_below_batch(
        self, queries: Sequence[Iterable], sigma: float, **kwargs
    ) -> BatchQueryResult:
        """Batched :meth:`query_below`: sets at most ``sigma``-similar."""
        return self.query_batch(queries, 0.0, sigma, **kwargs)

    def _scan_query_batch(
        self, query_sets: list[frozenset], sigma_low: float, sigma_high: float
    ) -> tuple[list[set[int]], list[list[tuple[int, float]]]]:
        """Exact batch evaluation: one sequential pass serves all queries."""
        n = len(query_sets)
        with trace.span(
            "scan_batch", n_pages=self.store.n_pages, n_queries=n
        ) as sp:
            answers_list: list[list[tuple[int, float]]] = [[] for _ in range(n)]
            candidates_list: list[set[int]] = [set() for _ in range(n)]
            for sid, stored in self.store.scan():
                for i, query_set in enumerate(query_sets):
                    candidates_list[i].add(sid)
                    self.io.cpu(len(stored) + len(query_set))
                    similarity = jaccard(stored, query_set)
                    if sigma_low <= similarity <= sigma_high:
                        answers_list[i].append((sid, similarity))
            for answers in answers_list:
                answers.sort(key=lambda pair: (-pair[1], pair[0]))
            sp.set(
                n_candidates=sum(len(c) for c in candidates_list),
                n_verified=sum(len(a) for a in answers_list),
            )
            return candidates_list, answers_list

    def _candidates_batch(
        self,
        query_sets: list[frozenset],
        sigma_low: float,
        sigma_high: float,
        timings: dict[str, float] | None = None,
    ) -> tuple[list[set[int]], np.ndarray | None, list[int]]:
        """Batch counterpart of :meth:`_candidates`.

        Returns the per-query candidate sets plus the packed embedding
        matrix of the non-empty query sets and the batch positions its
        rows correspond to (for the verification-stage Hamming kernel
        and trace annotation).
        """
        lo, up = self._enclosing_points(sigma_low, sigma_high)
        n = len(query_sets)
        with trace.span(
            "candidates_batch", lo=lo, up=up, n_queries=n
        ) as sp:
            if lo is None and up is None:
                sp.set(plan="full_collection")
                return [set(self._vectors) for _ in range(n)], None, []
            results: list[set[int]] = [set() for _ in range(n)]
            # Empty query sets cannot be embedded; as in the single
            # path they contribute no candidates outside the
            # full-collection plan.
            rows = [i for i, q in enumerate(query_sets) if q]
            if not rows:
                sp.set(plan="empty_queries")
                return results, None, []
            t_embed = time.perf_counter()
            with trace.span(
                "embed_batch", k=self.embedder.k, n_queries=len(rows)
            ):
                matrix = self.embedder.embed_many(
                    [query_sets[i] for i in rows]
                )
                self.io.cpu(self.embedder.k * len(rows))
            if timings is not None:
                timings["embed"] = (time.perf_counter() - t_embed) * 1e3

            def sim(point: float) -> list[set[int]]:
                return self._sfis[point].probe_batch(matrix)

            def dissim(point: float) -> list[set[int]]:
                return self._dfis[point].probe_batch(matrix)

            def done(plan: str, per_row: list[set[int]]):
                for row, i in enumerate(rows):
                    results[i] = per_row[row]
                sp.set(
                    plan=plan,
                    n_candidates=sum(len(s) for s in results),
                    _rows=rows,
                )
                return results, matrix, rows

            if lo is None:
                if up in self._dfis:
                    return done("dfi(up)", dissim(up))
                everything = set(self._vectors)
                return done(
                    "complement_sfi(up)", [everything - s for s in sim(up)]
                )
            if up is None:
                if lo in self._sfis:
                    return done("sfi(lo)", sim(lo))
                everything = set(self._vectors)
                return done(
                    "complement_dfi(lo)", [everything - s for s in dissim(lo)]
                )
            if lo in self._sfis and up in self._sfis:
                low_sets, up_sets = sim(lo), sim(up)
                return done(
                    "sfi_difference",
                    [a - b for a, b in zip(low_sets, up_sets)],
                )
            if lo in self._dfis and up in self._dfis:
                low_sets, up_sets = dissim(lo), dissim(up)
                return done(
                    "dfi_difference",
                    [b - a for a, b in zip(low_sets, up_sets)],
                )
            pivot = self._pivot_between(lo, up)
            sp.set(pivot=pivot)
            pivot_dissim, lo_dissim = dissim(pivot), dissim(lo)
            pivot_sim, up_sim = sim(pivot), sim(up)
            return done(
                "pivot_union",
                [
                    (pd - ld) | (ps - us)
                    for pd, ld, ps, us in zip(
                        pivot_dissim, lo_dissim, pivot_sim, up_sim
                    )
                ],
            )

    def _verify_batch(
        self,
        query_sets: list[frozenset],
        candidates_list: list[set[int]],
        sigma_low: float,
        sigma_high: float,
        matrix: np.ndarray | None,
        rows: list[int],
        timings: dict[str, float] | None = None,
    ) -> tuple[list[list[tuple[int, float]]], int]:
        """Fetch each distinct candidate once and verify all pairs.

        Verification is columnar by default (:attr:`columnar_verify`):
        each query's whole candidate list is decided by one vectorized
        sorted-hash intersection (:mod:`repro.exec.columnar`), with the
        packed Hamming kernel estimating pair similarities only when a
        trace is recording (the ``est_in_range`` EXPLAIN aggregate).
        The legacy path instead estimates every pair and verifies
        most-promising-first with per-pair exact Jaccard.  Both decide
        membership by exact Jaccard, produce identical answers, and
        charge accounted CPU identical to the single-query path.
        """
        n_pairs = sum(len(c) for c in candidates_list)
        with trace.span(
            "verify_batch",
            n_queries=len(query_sets),
            n_pairs=n_pairs,
        ) as sp:
            distinct = sorted(set().union(*candidates_list)) if candidates_list else []
            t_fetch = time.perf_counter()
            fetched = {sid: self.store.get(sid) for sid in distinct}
            if timings is not None:
                timings["fetch"] = (time.perf_counter() - t_fetch) * 1e3
            fetches_saved = n_pairs - len(distinct)
            if self.columnar_verify:
                answers_list = [
                    self._columnar_answers(
                        query_set, candidates, sigma_low, sigma_high, fetched
                    )
                    for query_set, candidates in zip(query_sets, candidates_list)
                ]
                est_in_range = (
                    self._estimate_in_range(
                        candidates_list, distinct, matrix, rows,
                        sigma_low, sigma_high,
                    )
                    if sp.recording else 0
                )
            else:
                answers_list, est_in_range = self._verify_pairs_loop(
                    query_sets, candidates_list, sigma_low, sigma_high,
                    matrix, rows, fetched, distinct,
                )
            n_verified = sum(len(a) for a in answers_list)
            sp.set(
                n_candidates=len(distinct),
                n_verified=n_verified,
                false_positives=n_pairs - n_verified,
                fetches_saved=fetches_saved,
                est_in_range=est_in_range,
            )
            return answers_list, fetches_saved

    def _pair_estimates(
        self,
        candidates_list: list[set[int]],
        distinct: list[int],
        matrix: np.ndarray | None,
        rows: list[int],
    ) -> tuple[np.ndarray | None, list[list[int] | None], list[int]]:
        """Estimated Jaccard of every (query, candidate) pair at once.

        One popcount kernel over the gathered pair rows; returns the
        flat estimate array, each query's candidate ordering it was
        computed over, and each query's offset into the flat array.
        Wall-clock work only -- never accounted as simulated CPU.
        """
        row_of = {i: row for row, i in enumerate(rows)}
        cand_lists: list[list[int] | None] = [None] * len(candidates_list)
        pair_vals: np.ndarray | None = None
        offsets: list[int] = []
        if rows and distinct:
            cand_matrix = np.stack([self._vectors[sid] for sid in distinct])
            col = {sid: j for j, sid in enumerate(distinct)}
            q_rows: list[int] = []
            c_cols: list[int] = []
            offset = 0
            for i, candidates in enumerate(candidates_list):
                row = row_of.get(i)
                if row is None or not candidates:
                    offsets.append(offset)
                    continue
                cand_list = list(candidates)
                cand_lists[i] = cand_list
                q_rows.extend([row] * len(cand_list))
                c_cols.extend(col[sid] for sid in cand_list)
                offsets.append(offset)
                offset += len(cand_list)
            if q_rows:
                # Codec-calibrated similarity estimate: full64 inverts
                # Theorem 1 with the fixed-precision collision bias,
                # b-bit applies the Li & Koenig slot correction.
                pair_vals = self.embedder.estimate_pairs(
                    matrix[q_rows], cand_matrix[c_cols]
                )
        return pair_vals, cand_lists, offsets

    def _estimate_in_range(
        self,
        candidates_list: list[set[int]],
        distinct: list[int],
        matrix: np.ndarray | None,
        rows: list[int],
        sigma_low: float,
        sigma_high: float,
    ) -> int:
        """How many pairs the Hamming estimate already places in range
        (the ``est_in_range`` trace aggregate)."""
        pair_vals, _, _ = self._pair_estimates(
            candidates_list, distinct, matrix, rows
        )
        if pair_vals is None:
            return 0
        return int(((sigma_low <= pair_vals) & (pair_vals <= sigma_high)).sum())

    def _verify_pairs_loop(
        self,
        query_sets: list[frozenset],
        candidates_list: list[set[int]],
        sigma_low: float,
        sigma_high: float,
        matrix: np.ndarray | None,
        rows: list[int],
        fetched: dict[int, frozenset],
        distinct: list[int],
    ) -> tuple[list[list[tuple[int, float]]], int]:
        """Legacy per-pair verification (``columnar_verify=False``)."""
        pair_vals, cand_lists, offsets = self._pair_estimates(
            candidates_list, distinct, matrix, rows
        )
        answers_list: list[list[tuple[int, float]]] = []
        est_in_range = 0
        for i, (query_set, candidates) in enumerate(
            zip(query_sets, candidates_list)
        ):
            cand_list = cand_lists[i]
            if cand_list is None or pair_vals is None:
                ordered = sorted(candidates)
            else:
                vals = pair_vals[offsets[i]:offsets[i] + len(cand_list)]
                est_in_range += int(
                    ((sigma_low <= vals) & (vals <= sigma_high)).sum()
                )
                # Verify most-promising first, ties by sid.
                ordered = [
                    sid for _, sid in
                    sorted(zip((-vals).tolist(), cand_list))
                ]
            answers: list[tuple[int, float]] = []
            for sid in ordered:
                stored = fetched[sid]
                self.io.cpu(len(stored) + len(query_set))
                similarity = jaccard(stored, query_set)
                if sigma_low <= similarity <= sigma_high:
                    answers.append((sid, similarity))
            answers.sort(key=lambda pair: (-pair[1], pair[0]))
            answers_list.append(answers)
        return answers_list, est_in_range

    def _annotate_batch_trace(self, root: Span, batch: BatchQueryResult) -> None:
        """Post-batch trace enrichment: totals on the root span plus
        per-batch-probe survivor counts (contributed (query, candidate)
        pairs whose candidate passed that query's exact verification)."""
        root.set(
            n_candidates=batch.n_candidates,
            n_verified=batch.n_verified,
            io_time=batch.io_time,
            cpu_time=batch.cpu_time,
            total_time=batch.total_time,
            pages_saved=batch.pages_saved,
            fetches_saved=batch.fetches_saved,
        )
        if batch.timings:
            root.set(timings={
                phase: round(ms, 3) for phase, ms in batch.timings.items()
            })
        answer_sids = [r.answer_sids for r in batch.results]
        for cspan in root.find("candidates_batch"):
            rows = cspan.attrs.get("_rows")
            if rows is None:
                continue
            for span in batch_probe_spans(cspan):
                per_query = span.attrs.get("_sids_per_query")
                if per_query is None:
                    continue
                span.set(survived=sum(
                    len(sids & answer_sids[i])
                    for sids, i in zip(per_query, rows)
                ))

    def _candidates(
        self,
        query_set: frozenset,
        sigma_low: float,
        sigma_high: float,
        timings: dict[str, float] | None = None,
    ) -> set[int]:
        lo, up = self._enclosing_points(sigma_low, sigma_high)
        with trace.span("candidates", lo=lo, up=up) as sp:
            if lo is None and up is None:
                sp.set(plan="full_collection")
                return set(self._vectors)
            if not query_set:
                # The empty set cannot be embedded (min over nothing); it is
                # disjoint from every non-empty set, so only a full-range
                # query can return anything -- handled above.
                sp.set(plan="empty_query")
                return set()
            t_embed = time.perf_counter()
            with trace.span("embed", k=self.embedder.k):
                vector = self.embedder.embed(query_set)
                self.io.cpu(self.embedder.k)
            if timings is not None:
                timings["embed"] = (time.perf_counter() - t_embed) * 1e3

            def sim(point: float) -> set[int]:
                return self._sfis[point].probe(vector)

            def dissim(point: float) -> set[int]:
                return self._dfis[point].probe(vector)

            def done(plan: str, sids: set[int]) -> set[int]:
                sp.set(plan=plan, n_candidates=len(sids))
                return sids

            if lo is None:
                if up in self._dfis:
                    return done("dfi(up)", dissim(up))
                # Inefficient fallback the DFI exists to avoid.
                return done("complement_sfi(up)", set(self._vectors) - sim(up))
            if up is None:
                if lo in self._sfis:
                    return done("sfi(lo)", sim(lo))
                return done(
                    "complement_dfi(lo)", set(self._vectors) - dissim(lo)
                )
            if lo in self._sfis and up in self._sfis:
                return done("sfi_difference", sim(lo) - sim(up))
            if lo in self._dfis and up in self._dfis:
                return done("dfi_difference", dissim(up) - dissim(lo))
            # Mixed case: lo is a pure DFI point, up a pure SFI point; pivot
            # through the dual-kind point m between them (Section 4.3).
            pivot = self._pivot_between(lo, up)
            sp.set(pivot=pivot)
            low_side = dissim(pivot) - dissim(lo)
            high_side = sim(pivot) - sim(up)
            return done("pivot_union", low_side | high_side)

    def _enclosing_points(
        self, sigma_low: float, sigma_high: float
    ) -> tuple[float | None, float | None]:
        """Cut points minimally enclosing the range; None = virtual 0/1."""
        lo = max((c for c in self.plan.cut_points if c <= sigma_low), default=None)
        up = min((c for c in self.plan.cut_points if c >= sigma_high), default=None)
        return lo, up

    def _pivot_between(self, lo: float, up: float) -> float:
        for point in self.plan.cut_points:
            if lo <= point <= up and point in self._sfis and point in self._dfis:
                return point
        raise RuntimeError(
            f"no dual-kind pivot between cut points {lo} and {up}; "
            "the plan is inconsistent"
        )

    def filter_stats(self, detail: bool = False) -> list[dict]:
        """Occupancy/load statistics for every materialized filter.

        One dict per SFI/DFI: its kind, cut point, turning point and
        the aggregate (optionally per-table) hash-table statistics from
        :meth:`~repro.core.filter_index.SimilarityFilterIndex.table_stats`.
        Surfaced by ``repro stats``.
        """
        stats = []
        for kind, filters in (("sfi", self._sfis), ("dfi", self._dfis)):
            for point, fi in sorted(filters.items()):
                stats.append({
                    "kind": kind,
                    "point": point,
                    "s_star": fi.threshold,
                    **fi.table_stats(detail=detail),
                })
        return stats

    def __repr__(self) -> str:
        return (
            f"SetSimilarityIndex(n_sets={self.n_sets}, "
            f"k={self.embedder.k}, b={self.embedder.b}, "
            f"codec={self.embedder.codec!r}, "
            f"intervals={self.plan.n_intervals}, "
            f"tables={self.plan.tables_used})"
        )

    # -- persistence ------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Snapshots are derived, reference-sharing views; persist the
        # index unfrozen rather than serializing one.  Build traces are
        # session-local observability and drop back to the class
        # default (None) on load.
        state["_frozen"] = None
        state.pop("build_trace", None)
        return state

    def __setstate__(self, state: dict) -> None:
        """Unpickle, rebuilding state absent from older saved indexes.

        Snapshots are never persisted (``_frozen`` resets to None), and
        the columnar hash arrays are recomputed from the stored sets if
        the file predates them -- without perturbing the I/O counters.
        """
        self.__dict__.update(state)
        self._frozen = None
        if "_chashes" not in state:
            self._chashes = {}
            self._cfallback = set()
            saved = self.io.snapshot()
            try:
                for sid, stored in self.store.scan():
                    self._set_chash(sid, stored)
            finally:
                self.io.stats = saved

    def save(self, path) -> None:
        """Persist the built index (structures, pages, vectors) to disk."""
        from repro.core.persistence import save_index

        save_index(self, path)

    @classmethod
    def load(cls, path) -> "SetSimilarityIndex":
        """Load an index previously written by :meth:`save`.

        Only load files you trust -- the on-disk format embeds a pickle.
        """
        from repro.core.persistence import load_index

        index = load_index(path)
        if not isinstance(index, cls):
            raise TypeError(f"{path} does not contain a {cls.__name__}")
        return index

    def _verify(
        self,
        query_set: frozenset,
        candidates: set[int],
        sigma_low: float,
        sigma_high: float,
        timings: dict[str, float] | None = None,
    ) -> list[tuple[int, float]]:
        """Fetch candidates from disk and keep exact in-range matches."""
        with trace.span("verify", n_candidates=len(candidates)) as sp:
            if self.columnar_verify:
                t_fetch = time.perf_counter()
                fetched = {sid: self.store.get(sid) for sid in sorted(candidates)}
                if timings is not None:
                    timings["fetch"] = (time.perf_counter() - t_fetch) * 1e3
                answers = self._columnar_answers(
                    query_set, candidates, sigma_low, sigma_high, fetched
                )
            else:
                answers = []
                for sid in candidates:
                    stored = self.store.get(sid)
                    self.io.cpu(len(stored) + len(query_set))
                    similarity = jaccard(stored, query_set)
                    if sigma_low <= similarity <= sigma_high:
                        answers.append((sid, similarity))
                answers.sort(key=lambda pair: (-pair[1], pair[0]))
            sp.set(
                n_verified=len(answers),
                false_positives=len(candidates) - len(answers),
            )
            return answers

    def _columnar_answers(
        self,
        query_set: frozenset,
        candidates: set[int],
        sigma_low: float,
        sigma_high: float,
        fetched: dict[int, frozenset],
    ) -> list[tuple[int, float]]:
        """Exact in-range matches of one query via the columnar kernels.

        Candidates must already be fetched (``fetched`` supplies the
        actual sets for the rare hash-collision fallback); this charges
        the same per-pair CPU the scalar loop charges and returns the
        identically sorted answer list.
        """
        from repro.exec.columnar import (
            SMALL_VERIFY_CUTOFF, build_csr, hash_set, in_range_answers,
            intersect_counts, jaccard_values,
        )

        cand_list = sorted(candidates)
        if not cand_list:
            return []
        if len(cand_list) <= SMALL_VERIFY_CUTOFF:
            self.io.cpu(
                sum(self._sizes[sid] for sid in cand_list)
                + len(cand_list) * len(query_set)
            )
            values = [jaccard(fetched[sid], query_set) for sid in cand_list]
            return in_range_answers(cand_list, values, sigma_low, sigma_high)
        sizes = np.fromiter(
            (self._sizes[sid] for sid in cand_list),
            dtype=np.int64, count=len(cand_list),
        )
        # Identical accounted CPU to the scalar loop's per-pair
        # ``cpu(len(stored) + len(query))`` charges, in one sum.
        self.io.cpu(int(sizes.sum()) + len(cand_list) * len(query_set))
        query_arr, query_collided = hash_set(query_set)
        if query_collided:
            values = [jaccard(fetched[sid], query_set) for sid in cand_list]
        else:
            indptr, data = build_csr([self._chashes[sid] for sid in cand_list])
            inter = intersect_counts(query_arr, indptr, data)
            values = jaccard_values(len(query_set), sizes, inter)
            if self._cfallback:
                for j, sid in enumerate(cand_list):
                    if sid in self._cfallback:
                        values[j] = jaccard(fetched[sid], query_set)
        return in_range_answers(cand_list, values, sigma_low, sigma_high)
