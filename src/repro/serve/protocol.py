"""Wire protocol for the query service: newline-delimited JSON.

One request per line, one response per line, matched by the client's
``id`` (responses may arrive out of submission order when requests are
pipelined on one connection).  The same codec backs the always-on
server (:mod:`repro.serve.server`), the load generator
(:mod:`repro.serve.loadgen`) and the one-shot ``snapshot serve`` CLI
path, so every entry point validates and serializes queries
identically.

Request::

    {"id": 7, "op": "query", "set": ["a", "b", "c"],
     "low": 0.4, "high": 0.9, "strategy": "index"}

``op`` defaults to ``"query"``; ``"ping"`` and ``"stats"`` round-trip
liveness and the server's metrics snapshot.  ``"return_candidates":
true`` asks for the candidate sids alongside the verified answers
(used by the equivalence harness).

Response (success)::

    {"id": 7, "ok": true, "answers": [[12, 0.8333], ...],
     "n_candidates": 9, "batch_size": 16, "queue_ms": 1.2}

Response (failure)::

    {"id": 7, "ok": false, "error": {"type": "overloaded",
                                     "message": "..."}}

Error types are closed-vocabulary (:data:`ERROR_TYPES`) so clients can
switch on them: ``bad_json`` (line is not JSON), ``bad_request``
(JSON, but not a valid request), ``too_large`` (line exceeded the
size limit), ``overloaded`` (admission control rejected the request;
back off and retry), ``shutting_down`` (server is draining),
``internal`` (dispatch failed).  Every error response is *typed and
final for that request only* -- the connection stays open and the
server keeps serving.

Floats survive the round trip exactly: ``json`` serializes via
``repr`` and Python floats round-trip through ``repr``, so similarity
values compared bit-for-bit against a direct ``query_batch`` are
equal, not merely close.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Hard cap on one request line (bytes, including the newline).
MAX_LINE_BYTES = 1 << 20

#: Closed vocabulary of ``error.type`` values.
ERROR_TYPES = (
    "bad_json",
    "bad_request",
    "too_large",
    "overloaded",
    "shutting_down",
    "internal",
)

_OPS = ("query", "ping", "stats")
_STRATEGIES = ("index", "scan", "auto")
_SCALARS = (str, int, float, bool)


class ProtocolError(Exception):
    """A request that cannot be served, tagged with a wire error type."""

    def __init__(self, etype: str, message: str):
        assert etype in ERROR_TYPES, etype
        super().__init__(message)
        self.etype = etype


@dataclass(frozen=True)
class QueryRequest:
    """A decoded, validated request line."""

    id: Any
    op: str = "query"
    elements: frozenset = frozenset()
    low: float = 0.5
    high: float = 1.0
    strategy: str = "index"
    return_candidates: bool = False

    @property
    def key(self) -> tuple:
        """Coalescing key: requests sharing it may ride one batch."""
        return (self.low, self.high, self.strategy)


def _request_id(obj: dict) -> Any:
    """The id to echo in error responses, if one can be salvaged."""
    rid = obj.get("id")
    return rid if isinstance(rid, (str, int, float, bool, type(None))) else None


def decode_request(line: str | bytes, max_bytes: int = MAX_LINE_BYTES) -> QueryRequest:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` (``too_large`` / ``bad_json`` /
    ``bad_request``) on anything malformed; the error carries the
    request id when the line was at least JSON with an ``id``.
    """
    if isinstance(line, str):
        line = line.encode("utf-8", "replace")
    if len(line) > max_bytes:
        raise ProtocolError("too_large", f"request line exceeds {max_bytes} bytes")
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_json", f"not a JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    rid = _request_id(obj)
    if "id" not in obj:
        raise _bad(rid, "missing required field 'id'")
    op = obj.get("op", "query")
    if op not in _OPS:
        raise _bad(rid, f"unknown op {op!r} (expected one of {_OPS})")
    if op != "query":
        return QueryRequest(id=rid, op=op)
    elements = obj.get("set")
    if not isinstance(elements, list):
        raise _bad(rid, "'set' must be a list of scalar elements")
    for el in elements:
        if not isinstance(el, _SCALARS):
            raise _bad(rid, f"set elements must be scalars, got {type(el).__name__}")
    low = obj.get("low", 0.5)
    high = obj.get("high", 1.0)
    for name, value in (("low", low), ("high", high)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _bad(rid, f"'{name}' must be a number")
    if not 0.0 <= low <= high <= 1.0:
        raise _bad(rid, f"invalid similarity range [{low}, {high}]")
    strategy = obj.get("strategy", "index")
    if strategy not in _STRATEGIES:
        raise _bad(rid, f"unknown strategy {strategy!r} (expected one of {_STRATEGIES})")
    return QueryRequest(
        id=rid,
        op="query",
        elements=frozenset(elements),
        low=float(low),
        high=float(high),
        strategy=strategy,
        return_candidates=bool(obj.get("return_candidates", False)),
    )


def _bad(rid: Any, message: str) -> ProtocolError:
    err = ProtocolError("bad_request", message)
    err.request_id = rid
    return err


def encode_request(
    rid: Any,
    elements,
    low: float,
    high: float,
    strategy: str = "index",
    *,
    op: str = "query",
    return_candidates: bool = False,
) -> bytes:
    """Serialize one request as a newline-terminated JSON line."""
    obj: dict[str, Any] = {"id": rid, "op": op}
    if op == "query":
        obj.update(set=sorted(elements, key=repr), low=low, high=high, strategy=strategy)
        if return_candidates:
            obj["return_candidates"] = True
    return encode_line(obj)


@dataclass
class QueryAnswer:
    """The per-request slice of a batch result, ready to serialize."""

    answers: list[tuple[int, float]]
    n_candidates: int
    batch_size: int
    queue_ms: float = 0.0
    candidates: list[int] | None = None
    extra: dict[str, Any] = field(default_factory=dict)


def response_ok(rid: Any, answer: QueryAnswer) -> dict[str, Any]:
    """Build a success response object for one answered query."""
    obj: dict[str, Any] = {
        "id": rid,
        "ok": True,
        "answers": [[int(sid), float(sim)] for sid, sim in answer.answers],
        "n_candidates": int(answer.n_candidates),
        "batch_size": int(answer.batch_size),
        "queue_ms": round(float(answer.queue_ms), 3),
    }
    if answer.candidates is not None:
        obj["candidates"] = [int(s) for s in answer.candidates]
    obj.update(answer.extra)
    return obj


def response_error(rid: Any, etype: str, message: str) -> dict[str, Any]:
    """Build a typed error response object."""
    assert etype in ERROR_TYPES, etype
    return {"id": rid, "ok": False, "error": {"type": etype, "message": message}}


def encode_line(obj: dict[str, Any]) -> bytes:
    """One compact JSON object, newline-terminated, UTF-8."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_response(line: str | bytes) -> dict[str, Any]:
    """Parse one response line (client side); raises on non-JSON."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("response must be a JSON object")
    return obj
