"""Similarity and Dissimilarity Filter Indices (Sections 4.1, 4.2).

An ``SFI(s*)`` retrieves, with probability ``p_{r,l}(s)``, every stored
vector whose Hamming similarity ``s`` to the query exceeds the turning
point ``s*``.  It is ``l`` hash tables, each keyed on a fixed random
sample of ``r`` bit positions; the probe result ``SimVector(s*, q)`` is
the union of the ``l`` matching buckets, answered with ``O(l)`` bucket
accesses.

A ``DFI(s*)`` retrieves vectors *at most* ``s*``-similar.  By
Theorem 2, complementing the query flips similarity around 1/2:

    S_H(h, ~q) = 1 - S_H(h, q),

so a DFI is an ``SFI(1 - s*)`` probed with the complemented query;
data vectors are stored unmodified.

Both structures are dynamic: vectors can be inserted or deleted at any
time, which is what the hash-table primitive buys the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.filter_function import FilterFunction
from repro.hamming.bitvector import complement
from repro.hamming.sampling import BitSampler
from repro.obs import metrics, trace
from repro.storage.hashtable import BucketHashTable, hash_words
from repro.storage.pager import PageManager

# Probe instruments (shared across all SFI/DFI instances); per-table
# candidate-count histograms feed the collision statistics the tuning
# experiments read.
_SFI_PROBES = metrics.counter("sfi.probes")
_SFI_CANDIDATES = metrics.counter("sfi.candidates")
_SFI_DUPLICATES = metrics.counter("sfi.duplicate_candidates")
_SFI_BATCHES = metrics.counter("sfi.batch_probes")
_DFI_PROBES = metrics.counter("dfi.probes")
_DFI_CANDIDATES = metrics.counter("dfi.candidates")
_DFI_BATCHES = metrics.counter("dfi.batch_probes")
_TABLE_CANDIDATES = metrics.histogram("sfi.table_candidates")
# Shared with the hash-table layer: pages a batched probe avoided by
# serving several batch members from one bucket read.
_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")


def record_batch_probe_counters(
    kind: str, n_queries: int, unique: int, collisions: int
) -> None:
    """Apply the filter-level counter deltas of one batched probe.

    Shared by the live ``probe_batch`` paths and the frozen-snapshot
    executor so both move ``sfi.*``/``dfi.*`` identically.  A DFI probe
    also moves the SFI counters (the live DFI delegates to its inner
    SFI), so ``kind="dfi"`` records both families.
    """
    if kind == "dfi":
        _DFI_BATCHES.inc()
        _DFI_PROBES.inc(n_queries)
        _DFI_CANDIDATES.inc(unique)
    _SFI_BATCHES.inc()
    _SFI_PROBES.inc(n_queries)
    _SFI_CANDIDATES.inc(unique)
    _SFI_DUPLICATES.inc(collisions)


class SimilarityFilterIndex:
    """``SFI(s*)``: retrieves vectors at least ``s*``-Hamming-similar.

    Parameters
    ----------
    threshold:
        The turning point ``s*`` in Hamming similarity, in (0, 1).
    n_tables:
        The number of hash tables ``l``; together with ``threshold``
        this fixes ``r`` via the turning-point equation.
    n_bits:
        Dimensionality ``D`` of the stored vectors.
    pager:
        Storage backend (shared for I/O accounting).
    expected_entries:
        Sizing hint: buckets are provisioned so that, at this many
        entries, overflows are rare (the paper's "no bucket overflows"
        provisioning).
    seed:
        Freezes the random bit-position samples.
    sigma_point:
        Optional Jaccard cut point this filter serves in the overall
        plan; purely observability metadata (surfaced by EXPLAIN).
    """

    def __init__(
        self,
        threshold: float,
        n_tables: int,
        n_bits: int,
        pager: PageManager,
        expected_entries: int = 1024,
        seed: int = 0,
        sigma_point: float | None = None,
    ):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if n_tables <= 0:
            raise ValueError(f"n_tables must be positive, got {n_tables}")
        self.threshold = threshold
        self.n_bits = n_bits
        self.sigma_point = sigma_point
        self.filter = FilterFunction.for_threshold(threshold, n_tables)
        rng = np.random.default_rng(seed)
        self._samplers = [
            BitSampler(n_bits, self.filter.r, rng) for _ in range(n_tables)
        ]
        slots = pager.capacity_for(16)
        n_buckets = max(1, -(-expected_entries // slots)) * 2
        self._tables = [BucketHashTable(pager, n_buckets) for _ in range(n_tables)]

    @property
    def n_tables(self) -> int:
        return len(self._tables)

    @property
    def r(self) -> int:
        """Sampled bits per table."""
        return self.filter.r

    @property
    def n_entries(self) -> int:
        """Entries per table (each vector appears once in every table)."""
        return self._tables[0].n_entries if self._tables else 0

    def insert(self, vector: np.ndarray, sid: int) -> None:
        """Index one packed vector under its set identifier."""
        for sampler, table in zip(self._samplers, self._tables):
            table.insert(sampler.key(vector), sid)

    def insert_many(
        self, matrix: np.ndarray, sids: Sequence[int], method: str = "bulk"
    ) -> None:
        """Bulk-index the rows of a packed matrix (vectorized keying).

        ``method="bulk"`` (default) loads each table through the
        vectorized bucket-partitioned path
        (:meth:`~repro.storage.hashtable.BucketHashTable.bulk_load`),
        which produces bit-identical chains, directories and accounting
        to ``method="insert"`` -- the legacy per-entry loop, kept as
        the equivalence/benchmark baseline.

        The rows of ``matrix`` need not be contiguous (column views and
        strided slices are accepted); ``sids`` must be unique within
        the call -- one set is one identifier, and a duplicate would
        silently double-index it in every table.
        """
        if matrix.shape[0] != len(sids):
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows but {len(sids)} sids given"
            )
        if method not in ("bulk", "insert"):
            raise ValueError(f"unknown insert_many method: {method!r}")
        if len(set(sids)) != len(sids):
            raise ValueError("duplicate sids in insert_many")
        if matrix.shape[0] == 0:
            return
        matrix = np.ascontiguousarray(matrix)
        if method == "bulk":
            for sampler, table in zip(self._samplers, self._tables):
                table.bulk_load_hashed(
                    hash_words(sampler.key_words(matrix), sampler.key_bytes),
                    sids,
                )
        else:
            for sampler, table in zip(self._samplers, self._tables):
                for key, sid in zip(sampler.keys(matrix), sids):
                    table.insert(key, sid)

    def table_units(self) -> list[tuple]:
        """The independent (sampler, table) build units, one per hash
        table -- what a parallel bulk build fans out over (see
        :mod:`repro.exec.build`)."""
        return list(zip(self._samplers, self._tables))

    def delete(self, vector: np.ndarray, sid: int) -> None:
        """Remove a previously inserted (vector, sid) pair."""
        for sampler, table in zip(self._samplers, self._tables):
            table.delete(sampler.key(vector), sid)

    def probe(self, query: np.ndarray) -> set[int]:
        """``SimVector(s*, q)``: union of the matching bucket of each table."""
        if not trace.is_active():
            # Untraced fast path: identical to the pre-instrumentation
            # loop plus aggregate counters (probe cost is per-table, so
            # per-table bookkeeping must stay out of this branch).
            sids: set[int] = set()
            total = 0
            for sampler, table in zip(self._samplers, self._tables):
                got = table.probe(sampler.key(query))
                total += len(got)
                sids.update(got)
            _SFI_PROBES.inc()
            _SFI_CANDIDATES.inc(len(sids))
            _SFI_DUPLICATES.inc(total - len(sids))
            return sids
        with trace.span(
            "sfi_probe",
            s_star=self.threshold,
            sigma=getattr(self, "sigma_point", None),
            r=self.filter.r,
            l=len(self._tables),
        ) as sp:
            sids = set()
            total = 0
            per_table: list[int] = []
            for sampler, table in zip(self._samplers, self._tables):
                got = table.probe(sampler.key(query))
                total += len(got)
                per_table.append(len(got))
                _TABLE_CANDIDATES.observe(len(got))
                sids.update(got)
            _SFI_PROBES.inc()
            _SFI_CANDIDATES.inc(len(sids))
            _SFI_DUPLICATES.inc(total - len(sids))
            sp.set(
                tables_probed=len(self._tables),
                candidates=len(sids),
                collisions=total - len(sids),
                table_candidates=per_table,
                _sids=sids,
            )
            return sids

    def probe_batch(self, matrix: np.ndarray) -> list[set[int]]:
        """``SimVector(s*, q)`` for every row of a packed query matrix.

        Equivalent to ``[self.probe(row) for row in matrix]`` but each
        table extracts all keys in one vectorized pass and probes them
        with grouped bucket reads
        (:meth:`~repro.storage.hashtable.BucketHashTable.probe_many`),
        so a bucket page shared by several queries of the batch is read
        once instead of once per query.
        """
        n = matrix.shape[0]
        if n == 0:
            return []
        saved_before = _PAGES_SAVED.local_value
        with trace.span(
            "sfi_probe_batch",
            s_star=self.threshold,
            sigma=getattr(self, "sigma_point", None),
            r=self.filter.r,
            l=len(self._tables),
            n_queries=n,
        ) as sp:
            sids: list[set[int]] = [set() for _ in range(n)]
            totals = [0] * n
            for sampler, table in zip(self._samplers, self._tables):
                for i, got in enumerate(table.probe_many(sampler.keys(matrix))):
                    totals[i] += len(got)
                    sids[i].update(got)
            unique = sum(len(s) for s in sids)
            record_batch_probe_counters("sfi", n, unique, sum(totals) - unique)
            if sp.recording:
                sp.set(
                    tables_probed=len(self._tables),
                    candidates=unique,
                    collisions=sum(totals) - unique,
                    pages_saved=_PAGES_SAVED.local_value - saved_before,
                    _sids_per_query=sids,
                )
            return sids

    def table_stats(self, detail: bool = False) -> dict:
        """Aggregate occupancy/load statistics over the ``l`` tables.

        With ``detail=True`` the per-table
        :meth:`~repro.storage.hashtable.BucketHashTable.load_stats`
        dicts are included under ``"tables"``.
        """
        per_table = [table.load_stats() for table in self._tables]
        stats = {
            "n_tables": len(self._tables),
            "r": self.filter.r,
            "entries_per_table": self.n_entries,
            "pages": sum(t["n_pages"] for t in per_table),
            "load_factor": (
                sum(t["load_factor"] for t in per_table) / len(per_table)
                if per_table else 0.0
            ),
            "avg_occupancy": (
                sum(t["avg_occupancy"] for t in per_table) / len(per_table)
                if per_table else 0.0
            ),
            "max_occupancy": max((t["max_occupancy"] for t in per_table), default=0),
            "max_chain_pages": max(
                (t["max_chain_pages"] for t in per_table), default=0
            ),
        }
        if detail:
            stats["tables"] = per_table
        return stats

    def freeze(self) -> "FrozenFilterProbe":
        """Read-only probe view with all bucket directories pre-built."""
        return FrozenFilterProbe(
            kind="sfi",
            threshold=self.threshold,
            sigma_point=getattr(self, "sigma_point", None),
            r=self.filter.r,
            n_bits=self.n_bits,
            samplers=list(self._samplers),
            tables=[table.freeze() for table in self._tables],
        )

    def __repr__(self) -> str:
        return (
            f"SimilarityFilterIndex(threshold={self.threshold:.3f}, "
            f"l={self.n_tables}, r={self.r})"
        )


class DissimilarityFilterIndex:
    """``DFI(s*)``: retrieves vectors at most ``s*``-Hamming-similar.

    Internally an ``SFI(1 - s*)``; probes complement the query vector
    per Theorem 2.  Data vectors are stored unchanged, so one insertion
    stream can feed SFIs and DFIs alike.
    """

    def __init__(
        self,
        threshold: float,
        n_tables: int,
        n_bits: int,
        pager: PageManager,
        expected_entries: int = 1024,
        seed: int = 0,
        sigma_point: float | None = None,
    ):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        self.n_bits = n_bits
        self.sigma_point = sigma_point
        self._sfi = SimilarityFilterIndex(
            1.0 - threshold, n_tables, n_bits, pager, expected_entries, seed
        )

    @property
    def n_tables(self) -> int:
        return self._sfi.n_tables

    @property
    def r(self) -> int:
        return self._sfi.r

    @property
    def filter(self) -> FilterFunction:
        """The underlying ``p_{r,l}``, with turning point at ``1 - s*``."""
        return self._sfi.filter

    @property
    def n_entries(self) -> int:
        return self._sfi.n_entries

    def insert(self, vector: np.ndarray, sid: int) -> None:
        self._sfi.insert(vector, sid)

    def insert_many(
        self, matrix: np.ndarray, sids: Sequence[int], method: str = "bulk"
    ) -> None:
        self._sfi.insert_many(matrix, sids, method=method)

    def table_units(self) -> list[tuple]:
        """The inner SFI's (sampler, table) build units (data vectors
        are stored unmodified; only probes complement the query)."""
        return self._sfi.table_units()

    def delete(self, vector: np.ndarray, sid: int) -> None:
        self._sfi.delete(vector, sid)

    def probe(self, query: np.ndarray) -> set[int]:
        """``DissimVector(s*, q)``: probe the inner SFI with ``~q``."""
        if not trace.is_active():
            sids = self._sfi.probe(complement(query, self.n_bits))
            _DFI_PROBES.inc()
            _DFI_CANDIDATES.inc(len(sids))
            return sids
        with trace.span(
            "dfi_probe",
            s_star=self.threshold,
            sigma=getattr(self, "sigma_point", None),
            r=self.r,
            l=self.n_tables,
        ) as sp:
            sids = self._sfi.probe(complement(query, self.n_bits))
            _DFI_PROBES.inc()
            _DFI_CANDIDATES.inc(len(sids))
            sp.set(
                tables_probed=self.n_tables,
                candidates=len(sids),
                _sids=sids,
            )
            return sids

    def probe_batch(self, matrix: np.ndarray) -> list[set[int]]:
        """Batch ``DissimVector``: probe the inner SFI with ``~rows``."""
        n = matrix.shape[0]
        if n == 0:
            return []
        saved_before = _PAGES_SAVED.local_value
        with trace.span(
            "dfi_probe_batch",
            s_star=self.threshold,
            sigma=getattr(self, "sigma_point", None),
            r=self.r,
            l=self.n_tables,
            n_queries=n,
        ) as sp:
            sids = self._sfi.probe_batch(complement(matrix, self.n_bits))
            _DFI_BATCHES.inc()
            _DFI_PROBES.inc(n)
            unique = sum(len(s) for s in sids)
            _DFI_CANDIDATES.inc(unique)
            if sp.recording:
                sp.set(
                    tables_probed=self.n_tables,
                    candidates=unique,
                    pages_saved=_PAGES_SAVED.local_value - saved_before,
                    _sids_per_query=sids,
                )
            return sids

    def table_stats(self, detail: bool = False) -> dict:
        """Occupancy statistics of the underlying tables (see SFI)."""
        return self._sfi.table_stats(detail=detail)

    def freeze(self) -> "FrozenFilterProbe":
        """Read-only probe view; queries must be complemented (see SFI)."""
        inner = self._sfi.freeze()
        return FrozenFilterProbe(
            kind="dfi",
            threshold=self.threshold,
            sigma_point=self.sigma_point,
            r=self.r,
            n_bits=self.n_bits,
            samplers=inner.samplers,
            tables=inner.tables,
            complement_query=True,
        )

    def __repr__(self) -> str:
        return (
            f"DissimilarityFilterIndex(threshold={self.threshold:.3f}, "
            f"l={self.n_tables}, r={self.r})"
        )


class FrozenFilterProbe:
    """Immutable batch-probe image of one SFI or DFI.

    Holds the filter's bit samplers plus one
    :class:`~repro.storage.hashtable.FrozenTableView` per hash table.
    Probing is table-granular so a parallel executor can shard one
    filter's ``l`` tables across workers; each table probe charges its
    page reads into the caller's :class:`~repro.storage.iomodel.IOStats`
    with accounting identical to the live ``probe_batch``.

    ``complement_query`` marks DFI views: the caller must pass the
    *complemented* query matrix (Theorem 2), computed once per batch
    rather than once per table.
    """

    __slots__ = ("kind", "threshold", "sigma_point", "r", "n_bits",
                 "samplers", "tables", "complement_query")

    def __init__(self, kind, threshold, sigma_point, r, n_bits,
                 samplers, tables, complement_query=False):
        self.kind = kind
        self.threshold = threshold
        self.sigma_point = sigma_point
        self.r = r
        self.n_bits = n_bits
        self.samplers = samplers
        self.tables = tables
        self.complement_query = complement_query

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    def probe_table(self, t: int, matrix: np.ndarray, io) -> list[list[int]]:
        """Probe table ``t`` with every row of the (pre-complemented for
        DFIs) packed query matrix; page charges go to ``io``."""
        return self.tables[t].probe_many(self.samplers[t].keys(matrix), io)
