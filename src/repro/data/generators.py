"""Controlled set-collection generators for tests and ablations.

These generators trade realism for control: they let tests pin the
similarity structure of a collection exactly (planted clusters with a
known mutation rate) or remove structure entirely (independent uniform
or Zipf draws), which the web-log surrogate deliberately does not.
"""

from __future__ import annotations

import numpy as np


def uniform_random_sets(
    n_sets: int,
    universe: int,
    set_size: int,
    seed: int = 0,
) -> list[frozenset[int]]:
    """Independent sets of fixed size drawn uniformly from a universe.

    Pairwise similarity concentrates around ``set_size / universe``
    (hypergeometric overlap), so the collection has essentially no
    similar pairs -- useful as a null model.
    """
    if set_size > universe:
        raise ValueError(f"set_size {set_size} exceeds universe {universe}")
    rng = np.random.default_rng(seed)
    return [
        frozenset(rng.choice(universe, size=set_size, replace=False).tolist())
        for _ in range(n_sets)
    ]


def zipf_sets(
    n_sets: int,
    universe: int,
    set_size: int,
    exponent: float = 1.0,
    seed: int = 0,
) -> list[frozenset[int]]:
    """Independent sets drawn with Zipf-skewed element popularity.

    Popular elements land in most sets, producing the broad low-level
    overlap typical of real categorical data.  Sets may be slightly
    smaller than ``set_size`` after duplicate draws collapse.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    sets = []
    for _ in range(n_sets):
        draws = rng.choice(universe, size=set_size, replace=True, p=probabilities)
        sets.append(frozenset(draws.tolist()))
    return sets


def planted_clusters(
    n_clusters: int,
    per_cluster: int,
    base_size: int,
    universe: int,
    mutation_rate: float = 0.2,
    seed: int = 0,
) -> list[frozenset[int]]:
    """Clusters of sets derived from shared bases by random mutation.

    Each cluster has a base set of ``base_size`` elements; members
    replace each base element, independently with probability
    ``mutation_rate``, by a fresh element.  Within a cluster the
    expected Jaccard similarity is
    :func:`expected_cluster_similarity`, while cross-cluster similarity
    is near zero -- a sharply bimodal ``D_S`` that makes
    recall/precision assertions deterministic enough to test.
    """
    if not 0.0 <= mutation_rate <= 1.0:
        raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    if base_size > universe:
        raise ValueError(f"base_size {base_size} exceeds universe {universe}")
    rng = np.random.default_rng(seed)
    fresh = universe  # mutated elements come from beyond the base universe
    sets: list[frozenset[int]] = []
    for _ in range(n_clusters):
        base = rng.choice(universe, size=base_size, replace=False)
        for _ in range(per_cluster):
            member = set()
            for element in base:
                if rng.random() < mutation_rate:
                    member.add(int(fresh + rng.integers(0, universe)))
                else:
                    member.add(int(element))
            sets.append(frozenset(member))
    return sets


def expected_cluster_similarity(mutation_rate: float) -> float:
    """Expected within-cluster Jaccard of :func:`planted_clusters`.

    Per base element the two members both keep it with probability
    ``(1 - mu)**2`` (one shared union element); otherwise they
    contribute two distinct elements.  Hence

        jaccard ~= (1 - mu)**2 / (2 - (1 - mu)**2).
    """
    keep_both = (1.0 - mutation_rate) ** 2
    return keep_both / (2.0 - keep_both)
