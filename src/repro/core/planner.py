"""Cost-based query planning: probe the index or fall back to a scan?

Section 6 derives analytically when the index beats the sequential
scan (result size under roughly ``N * a / rtn``).  A production system
should make that call *per query*, before doing the work.  The pieces
are already on hand:

* the similarity distribution ``D_S`` estimates how many candidates a
  range will attract (the selectivity-estimation idea of the CKKM00
  line of work the paper cites),
* the plan's :class:`~repro.core.optimizer.CaptureModel` says which
  filters a range probes and with what capture probability,
* the I/O model prices both alternatives.

``QueryPlanner`` combines them into per-range cost estimates and a
scan/index decision; ``SetSimilarityIndex.query(strategy="auto")``
consults it transparently.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.optimizer import CaptureModel, IndexPlan
from repro.core.distribution import SimilarityDistribution
from repro.storage.iomodel import IOCostModel

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PlanEstimate:
    """Cost prediction for one query range."""

    expected_candidates: float
    expected_answers: float
    probe_tables: int
    index_cost: float
    scan_cost: float

    @property
    def use_index(self) -> bool:
        """Whether the index is predicted to beat the scan."""
        return self.index_cost <= self.scan_cost


class QueryPlanner:
    """Estimates per-range costs from the plan, ``D_S`` and the I/O model.

    Parameters
    ----------
    plan, distribution:
        The built index's optimizer output and similarity distribution.
    io:
        Shared cost model (prices random/sequential reads and CPU ops).
    n_sets, heap_pages, avg_set_size:
        Collection statistics for scaling the pairwise distribution to
        per-query counts and pricing fetches/scans.
    """

    def __init__(
        self,
        plan: IndexPlan,
        distribution: SimilarityDistribution,
        io: IOCostModel,
        n_sets: int,
        heap_pages: int,
        avg_set_size: float,
    ):
        self.plan = plan
        self.distribution = distribution
        self.io = io
        self.n_sets = n_sets
        self.heap_pages = heap_pages
        self.avg_set_size = avg_set_size
        self._capture = CaptureModel(plan.cut_points, plan.filters, plan.b)
        self._tables_by_point: dict[tuple[float, str], int] = {
            (f.point, f.kind): f.n_tables for f in plan.filters
        }

    # -- selectivity -------------------------------------------------------

    def expected_candidates(self, sigma_low: float, sigma_high: float) -> float:
        """Expected candidate count for a random query with this range.

        ``D_S`` counts *pairs*; a random query set sees on average
        ``2 * mass / N`` partners per unit mass (each pair has two
        endpoints).  Capture probabilities then weight the mass the
        plan's probes would return.
        """
        if self.n_sets == 0:
            return 0.0
        grid, mass = self.distribution.centers, self.distribution.mass
        capture = self._capture.capture(sigma_low, sigma_high, grid)
        return float(np.sum(mass * capture)) * 2.0 / self.n_sets

    def expected_answers(self, sigma_low: float, sigma_high: float) -> float:
        """Expected true answer count for a random query with this range."""
        if self.n_sets == 0:
            return 0.0
        return (
            self.distribution.mass_between(sigma_low, sigma_high)
            * 2.0
            / self.n_sets
        )

    # -- costing -----------------------------------------------------------

    def probe_tables(self, sigma_low: float, sigma_high: float) -> int:
        """Hash tables the Section 4.3 plan would touch for this range."""
        lo, up = self._capture.enclosing(sigma_low, sigma_high)
        if lo is None and up is None:
            return 0
        points = {p for p in (lo, up) if p is not None}
        return sum(
            n
            for (point, _kind), n in self._tables_by_point.items()
            if point in points
        )

    def estimate(self, sigma_low: float, sigma_high: float) -> PlanEstimate:
        """Full cost comparison for one range."""
        candidates = self.expected_candidates(sigma_low, sigma_high)
        answers = self.expected_answers(sigma_low, sigma_high)
        tables = self.probe_tables(sigma_low, sigma_high)
        pages_per_set = max(1.0, self.avg_set_size / 64.0)
        fetch_cost = (
            self.io.random_cost
            + (pages_per_set - 1.0) * self.io.seq_cost
            + self.avg_set_size * self.io.cpu_cost
        )
        index_cost = tables * self.io.random_cost + candidates * fetch_cost
        if tables == 0:
            # Degenerate full-range plan: identical to a scan.
            index_cost = float("inf")
        scan_cost = (
            self.heap_pages * self.io.seq_cost
            + self.n_sets * self.avg_set_size * self.io.cpu_cost
        )
        return PlanEstimate(
            expected_candidates=candidates,
            expected_answers=answers,
            probe_tables=tables,
            index_cost=index_cost,
            scan_cost=scan_cost,
        )

    def choose(self, sigma_low: float, sigma_high: float) -> str:
        """``"index"`` or ``"scan"`` -- whichever is predicted cheaper."""
        estimate = self.estimate(sigma_low, sigma_high)
        strategy = "index" if estimate.use_index else "scan"
        logger.debug(
            "auto-plan [%.3f, %.3f]: index=%.1f scan=%.1f -> %s",
            sigma_low, sigma_high,
            estimate.index_cost, estimate.scan_cost, strategy,
        )
        return strategy
