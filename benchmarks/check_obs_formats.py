"""Validate the telemetry export artifacts (CI ``obs-smoke`` gate).

Checks the three files ``bench_obs.py --artifacts DIR`` writes --
Prometheus text exposition, query-event JSONL, Chrome trace-event
JSON -- against the validators in :mod:`repro.obs.export`, which pin
the format invariants external tooling relies on (TYPE-declared
families with cumulative ``le`` buckets; the full event schema on
every line; well-formed complete events with non-negative
timestamps).

Usage::

    PYTHONPATH=src python benchmarks/check_obs_formats.py DIR
    PYTHONPATH=src python benchmarks/check_obs_formats.py \
        --prom m.prom --events e.jsonl --trace t.json

Exits non-zero naming the first malformed artifact.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs import export


def check_prometheus(path: Path) -> str:
    families = export.validate_prometheus_text(path.read_text())
    if not families:
        raise ValueError("no metric families exported")
    return f"{len(families)} families"


def check_events(path: Path) -> str:
    return f"{export.validate_events_jsonl(path)} events"


def check_trace(path: Path) -> str:
    return f"{export.validate_chrome_trace(path.read_text())} spans"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "dir", nargs="?", type=Path,
        help="artifact directory from `bench_obs.py --artifacts DIR`",
    )
    parser.add_argument("--prom", type=Path, help="Prometheus text file")
    parser.add_argument("--events", type=Path, help="query-event JSONL file")
    parser.add_argument("--trace", type=Path, help="Chrome trace JSON file")
    args = parser.parse_args(argv)

    targets: list[tuple[str, Path, object]] = []
    if args.dir is not None:
        targets += [
            ("prometheus", args.dir / "obs_metrics.prom", check_prometheus),
            ("events", args.dir / "obs_events.jsonl", check_events),
            ("trace", args.dir / "obs_trace.json", check_trace),
        ]
    for kind, path, checker in (
        ("prometheus", args.prom, check_prometheus),
        ("events", args.events, check_events),
        ("trace", args.trace, check_trace),
    ):
        if path is not None:
            targets.append((kind, path, checker))
    if not targets:
        parser.error("nothing to check: pass DIR or --prom/--events/--trace")

    failures = 0
    for kind, path, checker in targets:
        try:
            detail = checker(path)
        except FileNotFoundError:
            print(f"FAIL {kind}: {path}: missing")
            failures += 1
        except ValueError as exc:
            print(f"FAIL {kind}: {path}: {exc}")
            failures += 1
        else:
            print(f"ok   {kind}: {path} ({detail})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
