"""Unit tests for result-quality metrics."""

import pytest

from repro.core.metrics import QueryQuality, average, evaluate_query


class TestEvaluateQuery:
    def test_perfect(self):
        q = evaluate_query({1, 2}, {1, 2}, {1, 2})
        assert q.recall == 1.0
        assert q.precision == 1.0

    def test_missing_answers(self):
        q = evaluate_query({1}, {1}, {1, 2})
        assert q.recall == 0.5

    def test_precision_against_candidates(self):
        """Precision measures candidate efficiency, not answer purity."""
        q = evaluate_query({1}, {1, 2, 3, 4}, {1})
        assert q.precision == 0.25
        assert q.recall == 1.0

    def test_empty_truth(self):
        q = evaluate_query(set(), {5, 6}, set())
        assert q.recall == 1.0
        assert q.precision == 0.0

    def test_empty_candidates(self):
        q = evaluate_query(set(), set(), set())
        assert q.precision == 1.0
        assert q.recall == 1.0

    def test_counts(self):
        q = evaluate_query({1, 2}, {1, 2, 3}, {2, 4})
        assert q == QueryQuality(
            recall=0.5, precision=1 / 3, n_answers=2, n_candidates=3, n_truth=2
        )

    def test_accepts_iterables(self):
        q = evaluate_query([1, 1, 2], (1, 2, 3), iter({1}))
        assert q.n_answers == 2
        assert q.n_candidates == 3


class TestAverage:
    def test_mean(self):
        assert average([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert average([]) == 0.0

    def test_generator(self):
        assert average(x / 2 for x in (1, 3)) == pytest.approx(1.0)
