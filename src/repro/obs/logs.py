"""Logging wiring for the ``repro`` logger hierarchy.

Every module logs through ``logging.getLogger("repro.<module>")``; by
stdlib convention the library itself never configures handlers, so a
silent import stays silent.  :func:`configure_logging` is the opt-in:
the CLI maps ``-v`` counts to it, and embedding applications may call
it (or attach their own handlers to the ``repro`` logger) instead.

Verbosity levels:

====  =========  ==========================================
``v`` level      what you see
====  =========  ==========================================
0     WARNING    problems only (default)
1     INFO       build/query milestones, one line each
2+    DEBUG      per-operation detail (inserts, probes, ...)
====  =========  ==========================================
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: Root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

_LEVELS = {0: logging.WARNING, 1: logging.INFO}
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``name`` may already be
    fully qualified, e.g. ``__name__`` inside the package)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    verbosity: int = 0, stream: IO[str] | None = None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger at a verbosity.

    Idempotent: repeated calls reconfigure the one handler this module
    owns (recognized by a tag attribute) instead of stacking
    duplicates, so tests and long-lived processes can re-invoke it
    freely.  Returns the configured root ``repro`` logger.
    """
    level = _LEVELS.get(max(0, int(verbosity)), logging.DEBUG)
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_TAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_TAG, True)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    elif stream is not None and stream is not handler.stream:
        try:
            handler.flush()
        except ValueError:
            pass  # the previous stream was closed (e.g. a test capture)
        handler.stream = stream
    handler.setLevel(level)
    return logger
