"""Tests for the telemetry exporters (repro.obs.export)."""

from __future__ import annotations

import json

import pytest

from repro.obs import export, trace
from repro.obs.events import EventLog
from repro.obs.export import (
    chrome_trace,
    prometheus_name,
    prometheus_text,
    validate_chrome_trace,
    validate_events_jsonl,
    validate_prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry

from tests.test_events import make_event


@pytest.fixture
def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("query.count").inc(7)
    reg.gauge("pager.cache_hit_ratio").set(0.625)
    fixed = reg.histogram("bucket.occupancy", bounds=(1, 2, 5, 10))
    for v in (0.5, 1.5, 3.0, 7.0, 42.0):
        fixed.observe(v)
    latency = reg.hdr("query.latency_ms")
    latency.observe_many([1.0, 2.0, 5.0, 100.0])
    return reg


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("query.latency_ms") == "repro_query_latency_ms"
        assert prometheus_name("weird-name!x") == "repro_weird_name_x"

    def test_text_exposition_validates(self, populated_registry):
        text = prometheus_text(populated_registry)
        families = validate_prometheus_text(text)
        assert families["repro_query_count"] == "counter"
        assert families["repro_pager_cache_hit_ratio"] == "gauge"
        assert families["repro_bucket_occupancy"] == "histogram"
        assert families["repro_query_latency_ms"] == "summary"

    def test_histogram_buckets_are_cumulative_with_inf(self, populated_registry):
        text = prometheus_text(populated_registry)
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_bucket_occupancy_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = float(line.rsplit(None, 1)[1])
        assert buckets["+Inf"] == 5.0
        finite = [buckets[k] for k in ("1.0", "2.0", "5.0", "10.0")]
        assert finite == sorted(finite)
        assert "repro_bucket_occupancy_count 5" in text
        assert "repro_bucket_occupancy_sum" in text

    def test_summary_carries_quantile_labels(self, populated_registry):
        text = prometheus_text(populated_registry)
        for q in ("0.5", "0.9", "0.99", "0.999"):
            assert f'repro_query_latency_ms{{quantile="{q}"}}' in text
        assert "repro_query_latency_ms_count 4" in text

    def test_validator_rejects_missing_type(self):
        with pytest.raises(ValueError, match="TYPE"):
            validate_prometheus_text("repro_orphan 1\n")

    def test_validator_rejects_non_cumulative_buckets(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            validate_prometheus_text(bad)

    def test_empty_registry_still_validates(self):
        assert validate_prometheus_text(prometheus_text(MetricsRegistry())) == {}


class TestChromeTrace:
    def _traced_root(self):
        with trace.capture("query", force=True) as root:
            with trace.span("candidates", filters=3):
                with trace.span("probe"):
                    pass
            with trace.span("verify", n=5):
                pass
        return root

    def test_trace_payload_validates(self):
        root = self._traced_root()
        payload = chrome_trace(root)
        assert validate_chrome_trace(payload) == 4
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert {"query", "candidates", "probe", "verify"} <= names
        root_event = next(e for e in events if e["name"] == "query")
        assert root_event["ts"] == 0.0
        child = next(e for e in events if e["name"] == "probe")
        assert child["ts"] >= 0.0 and child["dur"] >= 0.0

    def test_span_attributes_become_args(self):
        payload = chrome_trace(self._traced_root())
        verify = next(
            e for e in payload["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "verify"
        )
        assert verify["args"]["n"] == 5

    def test_write_and_validate_from_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._traced_root(), path)
        assert validate_chrome_trace(path.read_text()) == 4
        parsed = json.loads(path.read_text())
        assert parsed["displayTimeUnit"] == "ms"

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace("not json")
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="bad"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "q", "ts": -5, "dur": 1},
            ]})
        with pytest.raises(ValueError, match="no complete"):
            validate_chrome_trace({"traceEvents": []})


class TestEventsJsonl:
    def test_accepts_real_export(self, tmp_path):
        log = EventLog()
        for i in range(6):
            log.record(make_event(ts=float(i)))
        path = tmp_path / "events.jsonl"
        log.export_jsonl(path)
        assert validate_events_jsonl(path) == 6

    def test_rejects_missing_field(self, tmp_path):
        record = make_event().to_dict()
        del record["n_candidates"]
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="n_candidates"):
            validate_events_jsonl(path)

    def test_rejects_bad_kind_and_empty_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(make_event(kind="mystery").to_dict()) + "\n")
        with pytest.raises(ValueError):
            validate_events_jsonl(path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            validate_events_jsonl(empty)

    def test_rejects_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="not JSON"):
            validate_events_jsonl(path)


class TestExportsInPackage:
    def test_export_module_reachable_from_obs(self):
        import repro.obs as obs

        assert obs.export is export
