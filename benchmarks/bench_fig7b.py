"""FIG7B -- paper Fig. 7(b): the response-time comparison of Fig. 7(a)
repeated on the second dataset (Set2: broader universe, larger sets).

Paper shape to reproduce: same qualitative picture as Fig. 7(a) --
index wins below the crossover, loses above it; Set2's larger sets
make the scan proportionally more expensive.

Set2's surrogate runs at a 0.85 recall floor: its similar tail is
thinner and sits lower than Set1's, and at a 0.90 floor the Fig. 4
optimizer (correctly) refuses to place a high-similarity cut point --
the tail-cut plans top out around 0.89 expected recall.  That is the
tunability trade-off the title advertises, surfaced by this dataset;
EXPERIMENTS.md discusses it.
"""

import pytest

from repro.eval.experiments import ExperimentConfig, run_fig7

BUDGET = 1000
RECALL_FLOOR = 0.85


@pytest.fixture(scope="module")
def config(scale):
    return ExperimentConfig(
        n_sets=scale.n_sets,
        budget=BUDGET,
        n_queries=scale.n_queries,
        sample_pairs=scale.sample_pairs,
        k=scale.k,
        recall_target=RECALL_FLOOR,
        # Bound per-query probe cost: at laptop N the scan is cheap
        # enough that an uncapped 600-table filter's probes alone
        # exceed it (the paper's 200k-set scans dwarf probe cost).
        max_per_filter=128,
    )


def test_fig7b(benchmark, config, emit):
    result = benchmark.pedantic(
        run_fig7, args=("set2", config), kwargs={"budget": BUDGET}, rounds=1, iterations=1
    )
    from repro.eval.plots import fig7_ascii

    emit(
        "FIG7B",
        result.table()
        + f"\n(set2 runs at a {RECALL_FLOOR} recall floor; see module docstring)"
        + "\n\n"
        + fig7_ascii(result.summaries),
    )
    populated = [s for s in result.summaries if s.n_queries > 0]
    assert populated
    scans = [s.scan_time for s in populated]
    assert max(scans) / min(scans) < 1.2
    smallest = populated[0]
    assert smallest.index_time < smallest.scan_time
