"""Unit tests for the baselines (scan, inverted index, naive embedding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.inverted_index import InvertedIndex
from repro.baselines.naive_embedding import NaiveBinaryEmbedder, embedding_distortion
from repro.baselines.sequential_scan import SequentialScan
from repro.core.embedding import SetEmbedder
from repro.core.similarity import jaccard
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager
from repro.storage.setstore import SetStore

small_collections = st.lists(
    st.frozensets(st.integers(0, 40), min_size=1, max_size=10), min_size=1, max_size=12
)


def _store_with(sets):
    store = SetStore(PageManager(IOCostModel()))
    store.insert_many(sets)
    return store


class TestSequentialScan:
    def test_exactness(self, clustered_sets):
        sets = clustered_sets[:40]
        scan = SequentialScan(_store_with(sets))
        q = sets[0]
        result = scan.query(q, 0.3, 1.0)
        expected = {
            sid for sid, s in enumerate(sets) if 0.3 <= jaccard(s, q) <= 1.0
        }
        assert result.answer_sids == expected

    def test_candidates_are_everything(self, clustered_sets):
        sets = clustered_sets[:20]
        scan = SequentialScan(_store_with(sets))
        result = scan.query(sets[0], 0.9, 1.0)
        assert result.candidates == set(range(20))

    def test_sequential_io_only(self, clustered_sets):
        sets = clustered_sets[:20]
        scan = SequentialScan(_store_with(sets))
        result = scan.query(sets[0], 0.0, 1.0)
        assert result.io.random_reads == 0
        assert result.io.sequential_reads >= 20

    def test_cpu_charged_per_set(self, clustered_sets):
        sets = clustered_sets[:10]
        scan = SequentialScan(_store_with(sets))
        result = scan.query(sets[0], 0.0, 1.0)
        assert result.io.cpu_ops >= sum(len(s) for s in sets)

    def test_invalid_range(self, clustered_sets):
        scan = SequentialScan(_store_with(clustered_sets[:5]))
        with pytest.raises(ValueError):
            scan.query({1}, 0.9, 0.1)

    def test_time_flat_across_ranges(self, clustered_sets):
        """Scan cost is range-independent (the Fig. 7 flat bars)."""
        sets = clustered_sets[:30]
        scan = SequentialScan(_store_with(sets))
        t1 = scan.query(sets[0], 0.9, 1.0).io_time
        t2 = scan.query(sets[0], 0.0, 0.1).io_time
        assert t1 == pytest.approx(t2)


class TestInvertedIndex:
    def test_similarities_exact(self):
        sets = [frozenset({1, 2, 3}), frozenset({3, 4}), frozenset({9})]
        index = InvertedIndex(sets)
        sims = index.similarities({2, 3})
        assert sims[0] == pytest.approx(2 / 3)
        assert sims[1] == pytest.approx(1 / 3)
        assert 2 not in sims  # disjoint -> absent

    def test_query_range(self):
        sets = [frozenset({1, 2, 3}), frozenset({3, 4}), frozenset({9})]
        index = InvertedIndex(sets)
        answers = index.query({2, 3}, 0.5, 1.0)
        assert answers == [(0, pytest.approx(2 / 3))]

    def test_zero_low_includes_disjoint(self):
        sets = [frozenset({1}), frozenset({2})]
        index = InvertedIndex(sets)
        answers = dict(index.query({1}, 0.0, 1.0))
        assert answers == {0: 1.0, 1: 0.0}

    def test_empty_query_empty_sets(self):
        index = InvertedIndex()
        empty_sid = index.insert(frozenset())
        other = index.insert({1})
        answers = dict(index.query(frozenset(), 0.5, 1.0))
        assert answers == {empty_sid: 1.0}
        answers = dict(index.query(frozenset(), 0.0, 1.0))
        assert answers[other] == 0.0

    def test_delete(self):
        index = InvertedIndex([{1, 2}, {2, 3}])
        index.delete(0, {1, 2})
        assert index.n_sets == 1
        assert 0 not in index.similarities({1, 2})
        with pytest.raises(KeyError):
            index.delete(0, {1, 2})

    def test_postings_count(self):
        index = InvertedIndex([{1, 2}, {2, 3}])
        assert index.n_postings == 4

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            InvertedIndex([{1}]).query({1}, 0.9, 0.1)

    @given(small_collections, st.frozensets(st.integers(0, 40), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, sets, query):
        index = InvertedIndex(sets)
        got = dict(index.query(query, 0.2, 0.9))
        expected = {
            sid: jaccard(s, query)
            for sid, s in enumerate(sets)
            if 0.2 <= jaccard(s, query) <= 0.9
        }
        assert got.keys() == expected.keys()
        for sid in got:
            assert got[sid] == pytest.approx(expected[sid])


class TestNaiveEmbedding:
    def test_dimension(self):
        naive = NaiveBinaryEmbedder(k=10, b=6)
        assert naive.dimension == 60

    def test_identical_signatures_identical_vectors(self):
        naive = NaiveBinaryEmbedder(k=8, b=6, seed=1)
        sig = np.arange(8, dtype=np.uint64)
        assert np.array_equal(naive.embed_signature(sig), naive.embed_signature(sig))

    def test_example_1_structure(self):
        """Example 1 rebuilt: naive Hamming similarity exceeds the
        signature similarity relationship the ECC embedding enforces."""
        naive = NaiveBinaryEmbedder(k=4, b=3)
        sig_a = np.array([7, 3, 5, 1], dtype=np.uint64)
        sig_b = np.array([3, 3, 5, 3], dtype=np.uint64)
        s, s_h = embedding_distortion(naive, sig_a, sig_b)
        assert s == pytest.approx(0.5)
        assert s_h == pytest.approx(10 / 12)  # the paper's 0.83

    def test_ecc_distortion_is_zero(self):
        """The ECC embedding sits exactly on S_H = (1+s)/2."""
        ecc = SetEmbedder(k=32, b=6, seed=2)
        rng = np.random.default_rng(3)
        sig_a = rng.integers(0, 64, size=32, dtype=np.uint64)
        sig_b = sig_a.copy()
        sig_b[:8] = (sig_b[:8] + 1) % 64  # 25% disagreement
        s, s_h = embedding_distortion(ecc, sig_a, sig_b)
        assert s_h == pytest.approx((1 + s) / 2)

    def test_naive_distortion_varies_with_values(self):
        """Same signature similarity, different Hamming similarity --
        the data dependence that makes the naive embedding unusable."""
        naive = NaiveBinaryEmbedder(k=2, b=6)
        base = np.array([0, 0], dtype=np.uint64)
        close = np.array([1, 1], dtype=np.uint64)   # differ in 1 bit each
        far = np.array([63, 63], dtype=np.uint64)   # differ in all 6 bits
        _, s_h_close = embedding_distortion(naive, base, close)
        _, s_h_far = embedding_distortion(naive, base, far)
        assert s_h_close != s_h_far

    def test_embed_accepts_sets(self):
        naive = NaiveBinaryEmbedder(k=8, b=6, seed=4)
        assert naive.embed({1, 2, 3}).shape == (1,)
