"""Single-query loop vs batched execution (BENCH-BATCH).

Not a figure of the paper -- this quantifies what the batched query
path (``SetSimilarityIndex.query_batch``) buys over looping
``query()`` on the same workload:

* **simulated response time** -- the repo's headline metric (as in the
  other benches, "time" is the simulated I/O + CPU cost of the disk
  model): grouped bucket probes and deduplicated candidate fetches
  read strictly fewer pages, so batched throughput in simulated time
  rises with the batch size;
* **wall-clock throughput** (queries per second) from the vectorized
  minhash/ECC embedding, the per-bucket probe grouping and the single
  matrix verification kernel -- reported alongside, but bounded below
  by per-pair exact Jaccard verification, which both paths share;
* **page-read totals**, where the batch path is *guaranteed* never to
  read more bucket or heap pages than the loop (equivalence is covered
  by ``tests/test_batch.py``; this bench measures how much fewer).

The workload is the planted-cluster generator with an explicitly
placed plan (cut points 0.2/0.5/0.8): the paper's tunable setting,
where the filters are selective and probing -- the part batching
accelerates -- carries the query cost.  (The self-tuned optimizer on
the weblog distribution places its cuts near similarity 0, where
almost all of the pair mass lies, and verification dominates both
paths equally.)

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_batch.py [--smoke] [--out PATH]

or through pytest-benchmark alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch.py --benchmark-only

Both write the machine-readable ``BENCH_batch.json`` (repo root by
default; ``benchmarks/results/`` stays for the text table).  Per batch
size the JSON records simulated single/batch time and the simulated
speedup, single/batch wall seconds and queries/sec, page-read totals
and the saved-page split reported by the batch result (bucket pages
vs candidate fetches).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_batch.json"

#: (sigma_low, sigma_high) ranges exercised per batch size; one
#: index-strategy range dominated by probing and one wider range that
#: stresses verification/fetch dedup.
RANGES = [(0.5, 1.0), (0.2, 0.8)]


def _pages(delta) -> int:
    return delta.random_reads + delta.sequential_reads


def build_workload(
    n_sets: int, budget: int, k: int, seed: int
) -> tuple[list, "object"]:
    """Planted-cluster collection + explicitly planned index.

    ``n_sets`` is rounded to the cluster grid (20 sets per cluster).
    """
    from repro.core.index import SetSimilarityIndex
    from repro.core.optimizer import (
        IndexPlan,
        SimilarityDistribution,
        greedy_allocate,
        place_filters,
    )
    from repro.data.generators import planted_clusters

    per_cluster = 20
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=40,
        universe=20_000,
        mutation_rate=0.15,
        seed=seed,
    )
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=50_000, seed=seed)
    cuts = [0.2, 0.5, 0.8]
    filters = place_filters(cuts, delta=0.2)
    greedy_allocate(filters, budget, dist, 6)
    plan = IndexPlan(
        cut_points=cuts,
        delta=0.2,
        filters=filters,
        expected_recall=0.9,
        expected_precision=0.5,
        b=6,
        met_target=True,
    )
    index = SetSimilarityIndex.from_plan(sets, plan, dist, k=k, b=6, seed=seed)
    return sets, index


def run_bench(
    n_sets: int = 3000,
    n_queries: int = 256,
    batch_sizes: tuple[int, ...] = (8, 64, 256),
    budget: int = 200,
    k: int = 100,
    seed: int = 11,
    repeats: int = 3,
) -> dict:
    """Measure loop-vs-batch throughput and page reads; return the payload."""
    sets, index = build_workload(n_sets, budget, k, seed)
    # Queries drawn from the collection, as in the paper's protocol.
    queries = [sets[i % len(sets)] for i in range(n_queries)]

    rows = []
    for lo, hi in RANGES:
        # The simulated cost of the loop is deterministic; charge it once.
        single_sim = 0.0
        before = index.io.snapshot()
        for q in queries:
            single_sim += index.query(q, lo, hi).total_time
        single_pages = _pages(index.io.snapshot() - before)
        for size in batch_sizes:
            batches = [
                queries[start:start + size]
                for start in range(0, len(queries), size)
            ]
            # Deterministic pass: simulated time + page accounting.
            before = index.io.snapshot()
            batch_sim = 0.0
            pages_saved = fetches_saved = 0
            for batch in batches:
                result = index.query_batch(batch, lo, hi)
                batch_sim += result.total_time
                pages_saved += result.pages_saved
                fetches_saved += result.fetches_saved
            batch_pages = _pages(index.io.snapshot() - before)
            # Wall-clock: warm both paths, then best of `repeats`.
            single_secs = []
            batch_secs = []
            for q in queries[:size]:
                index.query(q, lo, hi)
            index.query_batch(queries[:size], lo, hi)
            for _ in range(repeats):
                t0 = time.perf_counter()
                for batch in batches:
                    for q in batch:
                        index.query(q, lo, hi)
                single_secs.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                for batch in batches:
                    index.query_batch(batch, lo, hi)
                batch_secs.append(time.perf_counter() - t0)
            single_s, batch_s = min(single_secs), min(batch_secs)
            rows.append({
                "sigma_low": lo,
                "sigma_high": hi,
                "batch_size": size,
                "n_queries": len(queries),
                "single_sim_time": round(single_sim, 1),
                "batch_sim_time": round(batch_sim, 1),
                "sim_speedup": round(single_sim / batch_sim, 2),
                "single_seconds": round(single_s, 4),
                "batch_seconds": round(batch_s, 4),
                "single_qps": round(len(queries) / single_s, 1),
                "batch_qps": round(len(queries) / batch_s, 1),
                "wall_speedup": round(single_s / batch_s, 2),
                "single_pages": single_pages,
                "batch_pages": batch_pages,
                "bucket_pages_saved": pages_saved,
                "fetches_saved": fetches_saved,
            })
    return {
        "experiment": "BENCH-BATCH",
        "workload": {
            "generator": "planted_clusters",
            "plan": "explicit cuts [0.2, 0.5, 0.8], delta 0.2",
            "n_sets": n_sets,
            "n_queries": n_queries,
            "budget": budget,
            "k": k,
            "seed": seed,
            "ranges": RANGES,
        },
        "metric_note": (
            "sim_speedup compares simulated response time (the repo's "
            "headline metric: I/O cost model + accounted CPU); "
            "wall_speedup compares Python wall clock, whose floor is the "
            "per-pair exact-Jaccard verification both paths share"
        ),
        "rows": rows,
    }


def format_table(payload: dict) -> str:
    header = (
        f"{'range':>12} {'batch':>6} {'sim(1)':>9} {'sim(B)':>9} "
        f"{'sim-spd':>8} {'wall-spd':>9} {'pages(1)':>9} {'pages(B)':>9} "
        f"{'saved':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in payload["rows"]:
        lines.append(
            f"[{r['sigma_low']:.2f},{r['sigma_high']:.2f}] "
            f"{r['batch_size']:>6} {r['single_sim_time']:>9} "
            f"{r['batch_sim_time']:>9} {r['sim_speedup']:>7}x "
            f"{r['wall_speedup']:>8}x {r['single_pages']:>9} "
            f"{r['batch_pages']:>9} "
            f"{r['single_pages'] - r['batch_pages']:>7}"
        )
    return "\n".join(lines)


def check(payload: dict, smoke: bool = False) -> list[str]:
    """The bench's own acceptance gates; returns failure messages."""
    failures = []
    for row in payload["rows"]:
        where = (
            f"batch={row['batch_size']} "
            f"range=[{row['sigma_low']},{row['sigma_high']}]"
        )
        if row["batch_pages"] >= row["single_pages"]:
            failures.append(f"batch read no fewer pages at {where}")
        # The throughput bar only applies at full scale: a smoke-size
        # collection has too few sets per bucket for grouping to pay.
        if not smoke and row["batch_size"] >= 64 and row["sim_speedup"] < 3.0:
            failures.append(
                f"simulated speedup {row['sim_speedup']}x < 3x at {where}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: checks the machinery, not the numbers",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        payload = run_bench(
            n_sets=400, n_queries=64, batch_sizes=(8, 64), budget=80,
            k=32, repeats=1,
        )
        payload["smoke"] = True
    else:
        payload = run_bench()
    print(format_table(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = check(payload, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def test_batch_throughput(benchmark, scale, emit, emit_json):
    """pytest-benchmark entry: batch-64 execution as the timed kernel."""
    n = min(scale.n_sets, 2000)
    sets, index = build_workload(n, budget=200, k=scale.k, seed=11)
    queries = sets[:64]
    benchmark(index.query_batch, queries, 0.5, 1.0)
    payload = run_bench(
        n_sets=n, n_queries=128, batch_sizes=(8, 64),
        k=scale.k, repeats=1,
    )
    emit("BENCH_batch", format_table(payload))
    emit_json("BENCH_batch", payload)


if __name__ == "__main__":
    raise SystemExit(main())
