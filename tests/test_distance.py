"""Unit tests for Hamming distance/similarity (Definitions 3, 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.bitvector import complement, pack_bits
from repro.hamming.distance import (
    hamming_distance,
    hamming_distance_many,
    hamming_distance_matrix,
    hamming_distance_pairs,
    hamming_similarity,
    hamming_similarity_many,
    hamming_similarity_matrix,
)


def _pair(n):
    return st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
    )


pairs = st.integers(min_value=1, max_value=200).flatmap(_pair)


def _matrix(n_rows, width):
    return st.lists(
        st.lists(st.integers(0, 1), min_size=width, max_size=width),
        min_size=n_rows,
        max_size=n_rows,
    )


#: Two packed matrices of a shared width: (A, W) and (B, W).
matrix_pairs = st.tuples(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 150)
).flatmap(
    lambda dims: st.tuples(
        _matrix(dims[0], dims[2]), _matrix(dims[1], dims[2])
    )
)

#: Two equal-shape matrices: row-aligned pair lists for the gather kernel.
aligned_pairs = st.tuples(st.integers(1, 8), st.integers(1, 150)).flatmap(
    lambda dims: st.tuples(
        _matrix(dims[0], dims[1]), _matrix(dims[0], dims[1])
    )
)


class TestHammingDistance:
    def test_identical(self):
        v = pack_bits(np.array([1, 0, 1, 1], dtype=np.uint8))
        assert hamming_distance(v, v) == 0

    def test_known_value(self):
        a = pack_bits(np.array([1, 0, 1, 0], dtype=np.uint8))
        b = pack_bits(np.array([0, 0, 1, 1], dtype=np.uint8))
        assert hamming_distance(a, b) == 2

    def test_shape_mismatch(self):
        a = pack_bits(np.zeros(64, dtype=np.uint8))
        b = pack_bits(np.zeros(128, dtype=np.uint8))
        with pytest.raises(ValueError):
            hamming_distance(a, b)

    def test_complement_distance_is_n(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        v = pack_bits(bits)
        assert hamming_distance(v, complement(v, 7)) == 7

    @given(pairs)
    @settings(max_examples=50)
    def test_matches_naive(self, pair):
        a_bits, b_bits = pair
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        naive = sum(x != y for x, y in zip(a_bits, b_bits))
        assert hamming_distance(a, b) == naive

    @given(pairs)
    @settings(max_examples=30)
    def test_symmetry(self, pair):
        a_bits, b_bits = pair
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestHammingDistanceMany:
    def test_rows(self):
        matrix = pack_bits(
            np.array([[1, 0, 1], [0, 0, 0], [1, 1, 1]], dtype=np.uint8)
        )
        query = pack_bits(np.array([1, 1, 1], dtype=np.uint8))
        assert hamming_distance_many(matrix, query).tolist() == [1, 3, 0]

    def test_empty_matrix(self):
        matrix = np.empty((0, 1), dtype=np.uint64)
        query = np.zeros(1, dtype=np.uint64)
        assert hamming_distance_many(matrix, query).shape == (0,)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            hamming_distance_many(np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.uint64))


class TestHammingSimilarity:
    def test_identical_is_one(self):
        v = pack_bits(np.array([1, 0, 1], dtype=np.uint8))
        assert hamming_similarity(v, v, 3) == 1.0

    def test_complement_is_zero(self):
        v = pack_bits(np.array([1, 0, 1, 0, 1], dtype=np.uint8))
        assert hamming_similarity(v, complement(v, 5), 5) == 0.0

    def test_half(self):
        a = pack_bits(np.array([1, 1, 0, 0], dtype=np.uint8))
        b = pack_bits(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert hamming_similarity(a, b, 4) == 0.5

    def test_invalid_n_bits(self):
        v = pack_bits(np.array([1], dtype=np.uint8))
        with pytest.raises(ValueError):
            hamming_similarity(v, v, 0)

    def test_many_matches_scalar(self):
        bits = np.array([[1, 0, 1, 1], [0, 0, 0, 0]], dtype=np.uint8)
        matrix = pack_bits(bits)
        query = pack_bits(np.array([1, 1, 1, 1], dtype=np.uint8))
        many = hamming_similarity_many(matrix, query, 4)
        singles = [hamming_similarity(matrix[i], query, 4) for i in range(2)]
        assert many.tolist() == singles

    @given(pairs)
    @settings(max_examples=30)
    def test_bounds(self, pair):
        a_bits, b_bits = pair
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        s = hamming_similarity(a, b, len(a_bits))
        assert 0.0 <= s <= 1.0

    @given(pairs)
    @settings(max_examples=30)
    def test_definition_4(self, pair):
        """S_H = 1 - d_H / t exactly."""
        a_bits, b_bits = pair
        t = len(a_bits)
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        assert hamming_similarity(a, b, t) == pytest.approx(
            1.0 - hamming_distance(a, b) / t
        )


class TestHammingDistanceMatrix:
    """The (A, B) all-pairs kernel behind the batch query path."""

    def test_known_values(self):
        a = pack_bits(np.array([[1, 0, 1], [0, 0, 0]], dtype=np.uint8))
        b = pack_bits(np.array([[1, 1, 1], [1, 0, 1]], dtype=np.uint8))
        assert hamming_distance_matrix(a, b).tolist() == [[1, 0], [3, 2]]

    def test_shape_validation(self):
        a = np.zeros((2, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            hamming_distance_matrix(a, np.zeros(1, dtype=np.uint64))
        with pytest.raises(ValueError):
            hamming_distance_matrix(a, np.zeros((2, 2), dtype=np.uint64))

    def test_empty_sides(self):
        a = np.empty((0, 1), dtype=np.uint64)
        b = np.zeros((3, 1), dtype=np.uint64)
        assert hamming_distance_matrix(a, b).shape == (0, 3)
        assert hamming_distance_matrix(b, a).shape == (3, 0)

    @given(matrix_pairs)
    @settings(max_examples=40)
    def test_matches_per_pair_scalar(self, mats):
        """Batched == every pairwise scalar distance, exactly."""
        a_bits, b_bits = mats
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        got = hamming_distance_matrix(a, b)
        for i in range(a.shape[0]):
            for j in range(b.shape[0]):
                assert got[i, j] == hamming_distance(a[i], b[j])

    @given(matrix_pairs)
    @settings(max_examples=20)
    def test_similarity_matrix_consistent(self, mats):
        a_bits, b_bits = mats
        t = len(a_bits[0])
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        sims = hamming_similarity_matrix(a, b, t)
        dists = hamming_distance_matrix(a, b)
        assert np.allclose(sims, 1.0 - dists / t)


class TestHammingDistancePairs:
    """The row-aligned gather kernel used by batched verification."""

    def test_known_values(self):
        a = pack_bits(np.array([[1, 0, 1], [0, 0, 0]], dtype=np.uint8))
        b = pack_bits(np.array([[1, 1, 1], [1, 0, 1]], dtype=np.uint8))
        assert hamming_distance_pairs(a, b).tolist() == [1, 2]

    def test_shape_validation(self):
        a = np.zeros((2, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            hamming_distance_pairs(a, np.zeros((3, 1), dtype=np.uint64))
        with pytest.raises(ValueError):
            hamming_distance_pairs(a[0], a[0])

    def test_empty(self):
        a = np.empty((0, 2), dtype=np.uint64)
        assert hamming_distance_pairs(a, a).shape == (0,)

    @given(aligned_pairs)
    @settings(max_examples=40)
    def test_matches_per_row_scalar(self, mats):
        a_bits, b_bits = mats
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        got = hamming_distance_pairs(a, b)
        for i in range(a.shape[0]):
            assert got[i] == hamming_distance(a[i], b[i])

    @given(aligned_pairs)
    @settings(max_examples=20)
    def test_diagonal_of_matrix_kernel(self, mats):
        """pairs(a, b) == diag(matrix(a, b)): the two kernels agree."""
        a_bits, b_bits = mats
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        assert np.array_equal(
            hamming_distance_pairs(a, b),
            np.diagonal(hamming_distance_matrix(a, b)),
        )

    @given(aligned_pairs, aligned_pairs)
    @settings(max_examples=30)
    def test_linear_under_concatenation(self, left, right):
        """d(a1 ++ a2, b1 ++ b2) == d(a1, b1) + d(a2, b2) per row.

        Concatenating the *bit* strings of two aligned pair lists (the
        rows are padded independently, so the packed words are simply
        re-packed from the joined bits) adds the distances exactly --
        the property that lets the verifier treat the k codeword blocks
        of a signature as one flat vector.
        """
        (a1_bits, b1_bits) = left
        (a2_bits, b2_bits) = right
        n = min(len(a1_bits), len(a2_bits))
        a1 = np.array(a1_bits[:n], dtype=np.uint8)
        b1 = np.array(b1_bits[:n], dtype=np.uint8)
        a2 = np.array(a2_bits[:n], dtype=np.uint8)
        b2 = np.array(b2_bits[:n], dtype=np.uint8)
        joined_a = pack_bits(np.concatenate([a1, a2], axis=1))
        joined_b = pack_bits(np.concatenate([b1, b2], axis=1))
        joined = hamming_distance_pairs(joined_a, joined_b)
        split = hamming_distance_pairs(
            pack_bits(a1), pack_bits(b1)
        ) + hamming_distance_pairs(pack_bits(a2), pack_bits(b2))
        assert np.array_equal(joined, split)


# --- b-bit slot kernels -------------------------------------------------

from repro.core.codec import SUPPORTED_BBITS, BBitPacker  # noqa: E402
from repro.hamming import distance as distance_mod  # noqa: E402
from repro.hamming.distance import (  # noqa: E402
    slot_distance,
    slot_distance_many,
    slot_distance_matrix,
    slot_distance_pairs,
)


def _slot_values(n_rows, k, bits):
    return st.lists(
        st.lists(st.integers(0, (1 << bits) - 1), min_size=k, max_size=k),
        min_size=n_rows,
        max_size=n_rows,
    )


#: (bits, (A, k) values, (B, k) values) for the all-pairs slot kernel.
slot_matrix_pairs = st.tuples(
    st.sampled_from(SUPPORTED_BBITS), st.integers(1, 5), st.integers(1, 5),
    st.integers(1, 140),
).flatmap(
    lambda dims: st.tuples(
        st.just(dims[0]),
        _slot_values(dims[1], dims[3], dims[0]),
        _slot_values(dims[2], dims[3], dims[0]),
    )
)

#: (bits, (N, k) values, (N, k) values) for the row-aligned slot kernel.
slot_aligned_pairs = st.tuples(
    st.sampled_from(SUPPORTED_BBITS), st.integers(1, 8), st.integers(1, 140)
).flatmap(
    lambda dims: st.tuples(
        st.just(dims[0]),
        _slot_values(dims[1], dims[2], dims[0]),
        _slot_values(dims[1], dims[2], dims[0]),
    )
)


def _pack(values, bits):
    return BBitPacker(bits).encode_many(np.array(values, dtype=np.uint64))


def _naive_slot_dist(a_vals, b_vals):
    """Brute-force count of differing slots on the unpacked values."""
    return sum(x != y for x, y in zip(a_vals, b_vals))


class TestSlotDistance:
    """Differing-slot kernels over BBitPacker layouts (b-bit codec)."""

    def test_identical(self):
        v = _pack([[3, 0, 2, 1]], 2)[0]
        assert slot_distance(v, v, 2) == 0

    def test_known_value(self):
        a = _pack([[3, 0, 2, 1]], 2)[0]
        b = _pack([[3, 1, 2, 0]], 2)[0]
        assert slot_distance(a, b, 2) == 2

    def test_single_bit_flip_counts_once(self):
        """A slot differing in one of its beta bits still counts as 1."""
        a = _pack([[0b1111, 0b0000]], 4)[0]
        b = _pack([[0b1110, 0b0000]], 4)[0]
        assert slot_distance(a, b, 4) == 1

    def test_invalid_slot_bits(self):
        v = np.zeros(1, dtype=np.uint64)
        for bad in (0, 3, 5, 7, 128):
            with pytest.raises(ValueError):
                slot_distance(v, v, bad)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            slot_distance(
                np.zeros(1, dtype=np.uint64), np.zeros(2, dtype=np.uint64), 2
            )

    @given(slot_aligned_pairs)
    @settings(max_examples=50)
    def test_matches_naive(self, example):
        bits, a_vals, b_vals = example
        a, b = _pack(a_vals, bits), _pack(b_vals, bits)
        for i in range(len(a_vals)):
            assert slot_distance(a[i], b[i], bits) == _naive_slot_dist(
                a_vals[i], b_vals[i]
            )

    @given(slot_aligned_pairs)
    @settings(max_examples=30)
    def test_bits_one_is_hamming(self, example):
        """slot_bits=1 degenerates to plain Hamming distance."""
        _, a_vals, b_vals = example
        ones = [[v & 1 for v in row] for row in a_vals]
        ones_b = [[v & 1 for v in row] for row in b_vals]
        a, b = _pack(ones, 1), _pack(ones_b, 1)
        assert np.array_equal(
            slot_distance_pairs(a, b, 1), hamming_distance_pairs(a, b)
        )
        assert slot_distance(a[0], b[0], 1) == hamming_distance(a[0], b[0])

    @given(slot_aligned_pairs)
    @settings(max_examples=30)
    def test_many_matches_scalar(self, example):
        bits, a_vals, b_vals = example
        a, b = _pack(a_vals, bits), _pack(b_vals, bits)
        got = slot_distance_many(a, b[0], bits)
        for i in range(a.shape[0]):
            assert got[i] == slot_distance(a[i], b[0], bits)

    @given(slot_matrix_pairs)
    @settings(max_examples=40)
    def test_matrix_matches_per_pair_scalar(self, example):
        bits, a_vals, b_vals = example
        a, b = _pack(a_vals, bits), _pack(b_vals, bits)
        got = slot_distance_matrix(a, b, bits)
        assert got.shape == (a.shape[0], b.shape[0])
        for i in range(a.shape[0]):
            for j in range(b.shape[0]):
                assert got[i, j] == _naive_slot_dist(a_vals[i], b_vals[j])

    @given(slot_aligned_pairs)
    @settings(max_examples=30)
    def test_pairs_is_diagonal_of_matrix(self, example):
        bits, a_vals, b_vals = example
        a, b = _pack(a_vals, bits), _pack(b_vals, bits)
        assert np.array_equal(
            slot_distance_pairs(a, b, bits),
            np.diagonal(slot_distance_matrix(a, b, bits)),
        )

    def test_shape_validation_batched(self):
        m = np.zeros((2, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            slot_distance_many(m[0], m[0], 2)
        with pytest.raises(ValueError):
            slot_distance_matrix(m, np.zeros((2, 2), dtype=np.uint64), 2)
        with pytest.raises(ValueError):
            slot_distance_pairs(m, np.zeros((3, 1), dtype=np.uint64), 2)

    def test_empty(self):
        empty = np.empty((0, 2), dtype=np.uint64)
        assert slot_distance_pairs(empty, empty, 4).shape == (0,)
        assert slot_distance_matrix(
            empty, np.zeros((3, 2), dtype=np.uint64), 4
        ).shape == (0, 3)

    def test_accepts_other_integer_dtypes(self):
        """Kernels asarray to uint64; smaller int dtypes must agree."""
        rng = np.random.default_rng(7)
        vals_a = rng.integers(0, 4, size=(5, 40), dtype=np.uint64)
        vals_b = rng.integers(0, 4, size=(5, 40), dtype=np.uint64)
        a, b = BBitPacker(2).encode_many(vals_a), BBitPacker(2).encode_many(vals_b)
        # Packed words here fit in 63 bits only by luck, so cast through
        # views that preserve the bit patterns exactly.
        for cast in (np.int64, np.uint64):
            a_cast = a.view(np.int64).astype(cast, copy=True).view(np.uint64)
            got = slot_distance_pairs(a_cast, b, 2)
            assert np.array_equal(got, slot_distance_pairs(a, b, 2))

    def test_chunk_boundaries(self, monkeypatch):
        """Shrunk chunk budget must not change any batched kernel."""
        rng = np.random.default_rng(11)
        vals_a = rng.integers(0, 16, size=(37, 90), dtype=np.uint64)
        vals_b = rng.integers(0, 16, size=(37, 90), dtype=np.uint64)
        a = BBitPacker(4).encode_many(vals_a)
        b = BBitPacker(4).encode_many(vals_b)
        full_matrix = slot_distance_matrix(a, b, 4)
        full_pairs = slot_distance_pairs(a, b, 4)
        full_h_matrix = hamming_distance_matrix(a, b)
        full_h_pairs = hamming_distance_pairs(a, b)
        # Chunk sizes of 1..3 rows force many boundary crossings.
        for budget in (1, a.shape[1] * 2, a.shape[1] * b.shape[0] * 3):
            monkeypatch.setattr(distance_mod, "_CHUNK_BYTES", budget)
            assert np.array_equal(slot_distance_matrix(a, b, 4), full_matrix)
            assert np.array_equal(slot_distance_pairs(a, b, 4), full_pairs)
            assert np.array_equal(hamming_distance_matrix(a, b), full_h_matrix)
            assert np.array_equal(hamming_distance_pairs(a, b), full_h_pairs)
