"""Set -> Hamming-space embedding (Sections 3.1 + 3.2, Theorem 1).

Composes the two embeddings of the paper:

1. ``S -> V``: a set becomes its length-``k`` min-hash signature.
2. ``V -> H``: each ``b``-bit (fixed-precision) min-hash value is
   encoded with the Hadamard code; the concatenation is a packed
   ``D = m * k``-bit vector.

For two sets of Jaccard similarity ``s``, the expected fraction of
agreeing signature coordinates is ``s``; agreeing coordinates share all
``m`` codeword bits, disagreeing ones share exactly ``m/2``.  Hence
(Theorem 1) the expected Hamming distance is ``(1 - s)/2 * D`` and the
expected Hamming similarity ``(1 + s) / 2``.

Reducing min-hash values to ``b`` bits makes *unequal* values collide
with probability about ``2**-b``, adding roughly ``(1 - s) / 2**b`` of
spurious agreement.  With the default ``b = 6`` that bias is under
1.6% of the disagreeing mass; :func:`jaccard_to_hamming` optionally
models it so analytic predictions match measurements.

Both stages are pluggable via the signature *codec* layer
(:mod:`repro.core.codec`): the generator may be the paper's MinHash or
SuperMinHash, and the packing may be the Hadamard code above
(``full64``) or b-bit minwise truncation (``bbit:β``), which stores
``β`` bits per slot instead of ``m = 2**b`` and estimates similarity
with the Li & Koenig variance-corrected slot estimator
(:meth:`SetEmbedder.estimate_pairs`).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.codec import make_hasher, make_packer, parse_codec
from repro.core.ecc import HadamardCode


def jaccard_to_hamming(s: float, b: int | None = None) -> float:
    """Expected Hamming similarity of the embeddings of ``s``-similar sets.

    With ``b`` given, includes the fixed-precision collision bias: a
    disagreeing coordinate still matches with probability ``2**-b``.
    """
    if b is None:
        return (1.0 + s) / 2.0
    collide = 2.0 ** (-b)
    agree = s + (1.0 - s) * collide
    return (1.0 + agree) / 2.0


def hamming_to_jaccard(s_h: float, b: int | None = None) -> float:
    """Inverse of :func:`jaccard_to_hamming` (clipped to [0, 1])."""
    agree = 2.0 * s_h - 1.0
    if b is not None:
        collide = 2.0 ** (-b)
        agree = (agree - collide) / (1.0 - collide)
    return float(min(1.0, max(0.0, agree)))


class SetEmbedder:
    """Embeds sets into a fixed-dimensional packed Hamming space.

    Parameters
    ----------
    k:
        Min-hash signature length.
    b:
        Bits of fixed precision per min-hash value; codewords have
        length ``m = 2**b`` and embeddings ``D = m * k`` bits.
    seed:
        Determines the min-hash permutations.  Queries must be embedded
        by an embedder with the same ``(k, b, seed, codec)`` as the
        index.
    codec:
        Signature codec spec (see :mod:`repro.core.codec`).  The
        default ``"full64"`` is bit-identical to the pre-codec format:
        MinHash values, Hadamard-coded at ``m = 2**b`` bits per slot.
        ``"bbit:β"`` packs ``β`` truncated bits per slot instead
        (``D = β * k``); ``"superminhash"`` swaps the generator.
    """

    def __init__(self, k: int = 100, b: int = 6, seed: int = 0,
                 codec: str = "full64"):
        spec = parse_codec(codec)
        self.codec = spec.name
        self.hasher = make_hasher(spec.generator, k, seed)
        self.code = make_packer(spec, b)
        self.k = k
        self.b = b
        self.seed = seed

    def __setstate__(self, state: dict) -> None:
        # Pre-codec pickles (index saves, snapshot objects.pkl) carry
        # no ``codec`` attribute; they are full64 by construction.
        state.setdefault("codec", "full64")
        self.__dict__.update(state)

    @property
    def m(self) -> int:
        """Bits per signature slot (codeword length for full64)."""
        return self.code.m

    @property
    def bias_bits(self) -> int | None:
        """The ``b`` for Theorem-1 conversion curves under this codec.

        full64 packing keeps the Hadamard fixed-precision collision
        bias (``2**-b``); b-bit packing has exact per-bit agreement
        ``(1 + s) / 2`` (low bits of distinct uniform values match
        with probability 1/2 per bit), so its planner curves use the
        uncorrected form (``None``).
        """
        return self.b if isinstance(self.code, HadamardCode) else None

    @property
    def dimension(self) -> int:
        """Total embedded dimensionality ``D = m * k``."""
        return self.code.m * self.k

    @property
    def n_words(self) -> int:
        """Packed width of one embedded vector in uint64 words."""
        return (self.dimension + 63) // 64

    def signature(self, elements: Iterable) -> np.ndarray:
        """The intermediate min-hash signature (space ``V``)."""
        return self.hasher.signature(elements)

    def signature_matrix(self, sets: Iterable[Iterable]) -> np.ndarray:
        """Signatures of many sets in one vectorized pass, ``(N, k)``."""
        return self.hasher.signature_matrix(sets)

    def embed(self, elements: Iterable) -> np.ndarray:
        """Packed ``D``-bit embedding of one set (space ``H``)."""
        return self.code.encode(self.hasher.signature(elements))

    def embed_many(self, sets: Iterable[Iterable]) -> np.ndarray:
        """Packed embeddings of many sets, shape ``(N, n_words)``."""
        signatures = self.hasher.signature_matrix(sets)
        if signatures.shape[0] == 0:
            return np.empty((0, self.n_words), dtype=np.uint64)
        return self.code.encode_many(signatures)

    def embed_signature(self, signature: np.ndarray) -> np.ndarray:
        """Embed an existing signature (useful when both are needed)."""
        return self.code.encode(signature)

    # -- similarity estimation from packed vectors ---------------------

    def estimate_pairs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of row-aligned packed vector pairs.

        ``(P, n_words) x (P, n_words) -> (P,)`` float64 in [0, 1].

        full64: inverts Theorem 1 with the fixed-precision collision
        bias (vectorized :func:`hamming_to_jaccard` at ``b``).

        bbit: counts *fully agreeing slots* with the masked-popcount
        slot kernel and applies the Li & Koenig variance correction
        ``ŝ = (m̂ - C) / (1 - C)`` with ``C = 2**-β``, the probability
        that truncations of distinct values collide.
        """
        from repro.hamming.distance import (
            hamming_distance_pairs,
            slot_distance_pairs,
        )

        if isinstance(self.code, HadamardCode):
            dists = hamming_distance_pairs(a, b)
            sims = 1.0 - dists / self.dimension
            collide = 2.0 ** (-self.b)
            return np.clip(
                (2.0 * sims - 1.0 - collide) / (1.0 - collide), 0.0, 1.0
            )
        diff = slot_distance_pairs(a, b, self.code.m)
        matched = 1.0 - diff / self.k
        collide = 2.0 ** (-self.code.m)
        return np.clip((matched - collide) / (1.0 - collide), 0.0, 1.0)

    def estimate_many(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of one packed vector against many rows.

        Same calibration as :meth:`estimate_pairs`, one-vs-many:
        ``(N, n_words) x (n_words,) -> (N,)``.
        """
        from repro.hamming.distance import (
            hamming_distance_many,
            slot_distance_many,
        )

        if isinstance(self.code, HadamardCode):
            s_h = 1.0 - hamming_distance_many(matrix, vector) / self.dimension
            collide = 2.0 ** (-self.b)
            return np.clip(
                (2.0 * s_h - 1.0 - collide) / (1.0 - collide), 0.0, 1.0
            )
        diff = slot_distance_many(matrix, vector, self.code.m)
        matched = 1.0 - diff / self.k
        collide = 2.0 ** (-self.code.m)
        return np.clip((matched - collide) / (1.0 - collide), 0.0, 1.0)

    def __repr__(self) -> str:
        return (
            f"SetEmbedder(k={self.k}, b={self.b}, seed={self.seed}, "
            f"codec={self.codec!r}, D={self.dimension})"
        )
