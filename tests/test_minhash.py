"""Unit tests for min-wise hashing (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minhash import MERSENNE_PRIME, MinHasher, stable_element_hash
from repro.core.similarity import jaccard


class TestStableElementHash:
    def test_deterministic(self):
        assert stable_element_hash("abc") == stable_element_hash("abc")

    def test_types_do_not_collide_trivially(self):
        values = {stable_element_hash(v) for v in (1, "1", b"1", 1.5, (1,))}
        assert len(values) == 5

    def test_negative_int(self):
        assert stable_element_hash(-5) != stable_element_hash(5)

    def test_large_int(self):
        assert isinstance(stable_element_hash(2**100), int)

    def test_numpy_int_matches_python_int(self):
        assert stable_element_hash(np.int64(42)) == stable_element_hash(42)


class TestMinHasher:
    def test_signature_shape_and_dtype(self):
        hasher = MinHasher(k=16, seed=0)
        sig = hasher.signature({1, 2, 3})
        assert sig.shape == (16,)
        assert sig.dtype == np.uint64

    def test_values_below_prime(self):
        hasher = MinHasher(k=32, seed=1)
        sig = hasher.signature(range(100))
        assert int(sig.max()) < MERSENNE_PRIME

    def test_deterministic_across_instances(self):
        a = MinHasher(k=8, seed=5).signature({"x", "y", "z"})
        b = MinHasher(k=8, seed=5).signature({"x", "y", "z"})
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = MinHasher(k=8, seed=5).signature({"x", "y", "z"})
        b = MinHasher(k=8, seed=6).signature({"x", "y", "z"})
        assert not np.array_equal(a, b)

    def test_order_independent(self):
        hasher = MinHasher(k=8, seed=0)
        assert np.array_equal(hasher.signature([3, 1, 2]), hasher.signature([1, 2, 3]))

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            MinHasher(k=4).signature([])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MinHasher(k=0)

    def test_identical_sets_agree_fully(self):
        hasher = MinHasher(k=64, seed=2)
        s = frozenset(range(50))
        assert hasher.estimate_similarity(hasher.signature(s), hasher.signature(s)) == 1.0

    def test_signature_matrix_matches_rows(self):
        hasher = MinHasher(k=12, seed=3)
        sets = [frozenset({1, 2}), frozenset({2, 3, 4}), frozenset({9})]
        matrix = hasher.signature_matrix(sets)
        assert matrix.shape == (3, 12)
        for i, s in enumerate(sets):
            assert np.array_equal(matrix[i], hasher.signature(s))

    def test_signature_matrix_empty(self):
        assert MinHasher(k=4).signature_matrix([]).shape == (0, 4)

    def test_estimate_shape_mismatch(self):
        hasher = MinHasher(k=4)
        with pytest.raises(ValueError):
            hasher.estimate_similarity(np.zeros(4, np.uint64), np.zeros(5, np.uint64))

    def test_min_of_subset_is_geq(self):
        """min over a subset can only be >= min over the superset."""
        hasher = MinHasher(k=32, seed=4)
        small = frozenset(range(10))
        big = frozenset(range(30))
        assert np.all(hasher.signature(small) >= hasher.signature(big))

    def test_singleton_signature_is_element_hash(self):
        """For a singleton the min is just that element's hash value."""
        hasher = MinHasher(k=8, seed=0)
        sig1 = hasher.signature({42})
        sig2 = hasher.signature({42})
        assert np.array_equal(sig1, sig2)
        assert np.all(sig1 < MERSENNE_PRIME)


class TestUnbiasedEstimation:
    """Pr[min pi(A) == min pi(B)] = sim(A, B) -- statistical check."""

    @pytest.mark.parametrize("overlap_size", [0, 10, 25, 40, 50])
    def test_estimator_tracks_jaccard(self, overlap_size):
        a = frozenset(range(50))
        b = frozenset(range(50 - overlap_size, 100 - overlap_size))
        true = jaccard(a, b)
        hasher = MinHasher(k=2000, seed=7)
        estimate = hasher.estimate_similarity(hasher.signature(a), hasher.signature(b))
        # k=2000 -> standard error <= ~0.011; allow 4 sigma.
        assert abs(estimate - true) < 0.05

    def test_estimator_unbiased_over_seeds(self):
        a = frozenset(range(30))
        b = frozenset(range(15, 45))
        true = jaccard(a, b)
        estimates = []
        for seed in range(30):
            hasher = MinHasher(k=100, seed=seed)
            estimates.append(
                hasher.estimate_similarity(hasher.signature(a), hasher.signature(b))
            )
        assert abs(np.mean(estimates) - true) < 0.02

    @given(
        st.frozensets(st.integers(0, 60), min_size=1, max_size=30),
        st.frozensets(st.integers(0, 60), min_size=1, max_size=30),
    )
    @settings(max_examples=20, deadline=None)
    def test_estimate_within_statistical_bounds(self, a, b):
        hasher = MinHasher(k=800, seed=11)
        estimate = hasher.estimate_similarity(hasher.signature(a), hasher.signature(b))
        # 800 samples -> se <= 0.018; 5 sigma tolerance keeps flake ~0.
        assert abs(estimate - jaccard(a, b)) < 0.09


class TestSignatureMatrixChunking:
    """``signature_matrix`` chunking is invisible: any ``chunk_elements``
    yields bit-identical output to the per-set ``signature`` loop."""

    def test_single_set_larger_than_chunk(self):
        hasher = MinHasher(k=16, seed=5)
        big = frozenset(range(200))
        matrix = hasher.signature_matrix([big], chunk_elements=32)
        assert np.array_equal(matrix[0], hasher.signature(big))

    def test_batch_straddling_chunk_boundary(self):
        hasher = MinHasher(k=16, seed=6)
        sets = [frozenset(range(i, i + 7)) for i in range(0, 60, 4)]
        # chunk_elements=20 splits the 15-set batch mid-stream several
        # times (7 elements per set -> at most 2 sets per chunk).
        matrix = hasher.signature_matrix(sets, chunk_elements=20)
        for i, s in enumerate(sets):
            assert np.array_equal(matrix[i], hasher.signature(s))

    def test_empty_set_rejected_in_any_chunk(self):
        hasher = MinHasher(k=4, seed=0)
        with pytest.raises(ValueError):
            hasher.signature_matrix(
                [frozenset({1, 2}), frozenset()], chunk_elements=2
            )

    @given(
        st.lists(
            st.frozensets(st.integers(0, 99), min_size=1, max_size=12),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunking_is_bit_identical(self, sets, chunk_elements):
        """Property: for random batches and chunk sizes -- including
        chunks smaller than a single set -- the matrix matches the
        scalar path exactly."""
        hasher = MinHasher(k=8, seed=7)
        matrix = hasher.signature_matrix(sets, chunk_elements=chunk_elements)
        unchunked = hasher.signature_matrix(sets)
        assert np.array_equal(matrix, unchunked)
        for i, s in enumerate(sets):
            assert np.array_equal(matrix[i], hasher.signature(s))
