"""Drivers for every table/figure in the paper plus DESIGN.md ablations.

Each ``run_*`` function regenerates one evaluation artifact:

========  ==========================================================
FIG6A     :func:`run_fig6` with ``budget=500`` -- per-bucket precision
          and recall for both datasets (paper Fig. 6(a))
FIG6B     :func:`run_fig6` with ``budget=1000`` (paper Fig. 6(b))
FIG7A/B   :func:`run_fig7` -- per-bucket response time, Scan vs Index
          with I/O and CPU separated (paper Fig. 7(a)/(b))
XOVER     :func:`run_crossover` -- the Section 6 analytic claim that
          the index wins while result size stays under ~N/rtn
EX1       :func:`run_embedding_distortion` -- Example 1: naive binary
          embedding distorts similarity, the ECC embedding does not
ABL-RL    :func:`run_filter_tradeoff` -- accuracy of p_{r,l} vs l
ABL-EQ    :func:`run_placement_ablation` -- equidepth vs uniform cuts
ABL-GREEDY:func:`run_allocation_ablation` -- greedy vs uniform tables
ABL-DFI   :func:`run_dfi_benefit` -- DFIs vs SFI-only low-range plans
========  ==========================================================

The paper ran 200,000-set collections and 1,000 queries per bucket on
a 2001 testbed; defaults here are scaled down (configurable) so the
whole suite replays in minutes, and response "time" comes from the
shared I/O cost model rather than a wall clock -- shapes, not absolute
numbers, are the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.naive_embedding import NaiveBinaryEmbedder, embedding_distortion
from repro.core.distribution import SimilarityDistribution
from repro.core.embedding import SetEmbedder, jaccard_to_hamming
from repro.core.filter_function import FilterFunction
from repro.core.index import SetSimilarityIndex
from repro.core.optimizer import (
    SFI,
    PlannedFilter,
    average_precision,
    average_recall,
    evaluate_ranges,
    greedy_allocate,
    plan_index,
    uniform_allocate,
    worst_precision,
    worst_recall,
)
from repro.data.queries import QueryWorkload, RangeQuery
from repro.data.weblog import make_set1, make_set2
from repro.eval.harness import BucketSummary, ExperimentHarness
from repro.eval.report import format_table


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the dataset-scale experiments."""

    n_sets: int = 1200
    budget: int = 500
    recall_target: float = 0.9
    k: int = 100
    b: int = 6
    n_queries: int = 150
    seed: int = 0
    sample_pairs: int | None = 100_000
    #: Optional cap on any single filter's hash tables; bounds probe
    #: cost per query (see greedy_allocate) at small collection scales.
    max_per_filter: int | None = None
    #: Thread-pool width for the bulk filter build (the built index is
    #: bit-identical at any count; only build wall clock changes).
    workers: int = 1

    def scaled(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)


_DATASETS = {"set1": make_set1, "set2": make_set2}


def make_dataset(name: str, n_sets: int, seed: int = 0) -> list[frozenset[int]]:
    """Instantiate one of the paper's dataset surrogates by name."""
    try:
        maker = _DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; options: {sorted(_DATASETS)}")
    return maker(n_sets, seed=seed + 1)


def build_harness(name: str, config: ExperimentConfig) -> ExperimentHarness:
    """Build the index + scan + oracle bundle for one dataset."""
    sets = make_dataset(name, config.n_sets, config.seed)
    index = SetSimilarityIndex.build(
        sets,
        budget=config.budget,
        recall_target=config.recall_target,
        k=config.k,
        b=config.b,
        seed=config.seed,
        sample_pairs=config.sample_pairs,
        max_per_filter=config.max_per_filter,
        workers=config.workers,
    )
    return ExperimentHarness(sets, index)


# -- FIG6A / FIG6B -----------------------------------------------------------


@dataclass
class Fig6Result:
    budget: int
    summaries: dict[str, list[BucketSummary]]
    expected_recall: dict[str, float]

    def table(self) -> str:
        rows = []
        for name, buckets in self.summaries.items():
            for s in buckets:
                rows.append([name, s.label, s.n_queries, s.precision, s.recall])
        return format_table(
            ["dataset", "result size", "queries", "precision", "recall"], rows
        )


def run_fig6(
    config: ExperimentConfig | None = None,
    budget: int = 500,
    datasets: tuple[str, ...] = ("set1", "set2"),
) -> Fig6Result:
    """Fig. 6: precision and recall per result-size bucket.

    Paper shape: the optimization's recall goal (~0.9) is met in every
    bucket on average, while precision decreases as result size grows
    (large results come from low-similarity ranges where the filters
    are least selective).
    """
    config = (config or ExperimentConfig()).scaled(budget=budget)
    summaries, expected = {}, {}
    for name in datasets:
        harness = build_harness(name, config)
        workload = QueryWorkload(len(harness.sets), seed=config.seed + 17)
        records = harness.run(workload.sample(config.n_queries), measure_scan=False)
        summaries[name] = harness.bucket_summaries(records)
        expected[name] = harness.index.plan.expected_recall
    return Fig6Result(budget=config.budget, summaries=summaries, expected_recall=expected)


# -- FIG7A / FIG7B -----------------------------------------------------------


@dataclass
class Fig7Result:
    dataset: str
    budget: int
    summaries: list[BucketSummary]
    #: Per-query trace summaries (only with ``collect_trace=True``).
    trace_summaries: list[dict] | None = None

    def table(self) -> str:
        rows = [
            [
                s.label,
                s.n_queries,
                s.scan_io_time,
                s.scan_cpu_time,
                s.scan_time,
                s.index_io_time,
                s.index_cpu_time,
                s.index_time,
            ]
            for s in self.summaries
        ]
        return format_table(
            [
                "result size",
                "queries",
                "scan io",
                "scan cpu",
                "scan total",
                "index io",
                "index cpu",
                "index total",
            ],
            rows,
        )


def run_fig7(
    dataset: str = "set1",
    config: ExperimentConfig | None = None,
    budget: int = 1000,
    collect_trace: bool = False,
) -> Fig7Result:
    """Fig. 7: average response time per bucket, Scan vs Index.

    Paper shape: the index beats the scan for every bucket with result
    size below ~25% of the collection; index time grows with result
    size (more candidates -> more random fetches) while scan time is
    flat.

    ``collect_trace=True`` additionally traces every index query and
    returns the per-query filter summaries (``trace_summaries``) for
    JSON artifacts.
    """
    config = (config or ExperimentConfig()).scaled(budget=budget)
    harness = build_harness(dataset, config)
    workload = QueryWorkload(len(harness.sets), seed=config.seed + 29)
    records = harness.run(
        workload.sample(config.n_queries),
        measure_scan=True,
        collect_trace=collect_trace,
    )
    return Fig7Result(
        dataset=dataset,
        budget=config.budget,
        summaries=harness.bucket_summaries(records),
        trace_summaries=(
            [r.trace_summary for r in records] if collect_trace else None
        ),
    )


# -- XOVER -------------------------------------------------------------------


@dataclass
class CrossoverResult:
    rows: list[tuple[float, float, float]]  # (result fraction, scan, index)
    predicted_fraction: float

    def table(self) -> str:
        return format_table(
            ["result fraction", "scan time", "index time", "index wins"],
            [[f, s, i, "yes" if i < s else "no"] for f, s, i in self.rows],
        )

    def measured_crossover(self) -> float | None:
        """Smallest result fraction at which the scan wins."""
        for fraction, scan_time, index_time in self.rows:
            if index_time >= scan_time:
                return fraction
        return None


def run_crossover(
    dataset: str = "set1",
    config: ExperimentConfig | None = None,
    n_bins: int = 10,
) -> CrossoverResult:
    """Section 6's analytic crossover: index wins while the result size
    stays below roughly ``N * a / rtn`` sets (a = pages per set).

    Queries are binned by measured candidate fraction; per bin the mean
    scan and index times are compared.
    """
    config = config or ExperimentConfig()
    harness = build_harness(dataset, config)
    workload = QueryWorkload(len(harness.sets), seed=config.seed + 43)
    records = harness.run(workload.sample(config.n_queries), measure_scan=True)
    n = max(1, harness.index.n_sets)
    fractions = np.array([r.n_candidates / n for r in records])
    edges = np.linspace(0.0, max(1e-9, fractions.max()), n_bins + 1)
    rows = []
    for i in range(n_bins):
        mask = (fractions >= edges[i]) & (
            fractions <= edges[i + 1] if i == n_bins - 1 else fractions < edges[i + 1]
        )
        members = [r for r, m in zip(records, mask) if m]
        if not members:
            continue
        rows.append(
            (
                float(np.mean(fractions[mask])),
                float(np.mean([r.scan_time for r in members])),
                float(np.mean([r.index_time for r in members])),
            )
        )
    io = harness.index.io
    pages_per_set = harness.index.store.n_pages / n
    predicted = pages_per_set * io.seq_cost / io.random_cost
    return CrossoverResult(rows=rows, predicted_fraction=predicted)


# -- EX1 ---------------------------------------------------------------------


@dataclass
class DistortionResult:
    rows: list[tuple[float, float, float, float]]
    naive_rmse: float
    ecc_rmse: float

    def table(self) -> str:
        return format_table(
            ["signature sim", "expected S_H", "ecc S_H", "naive S_H"],
            [[s, e, ecc, naive] for s, e, ecc, naive in self.rows],
        )


def run_embedding_distortion(
    n_pairs: int = 200,
    k: int = 100,
    b: int = 6,
    seed: int = 0,
) -> DistortionResult:
    """Example 1 quantified: embedded Hamming similarity vs the ideal
    ``(1 + s) / 2`` line for the ECC embedding and the naive binary
    concatenation.

    Paper shape: the ECC embedding sits on the line (zero distortion up
    to the fixed-precision bias); the naive embedding scatters well
    above it.
    """
    rng = np.random.default_rng(seed)
    ecc = SetEmbedder(k=k, b=b, seed=seed)
    naive = NaiveBinaryEmbedder(k=k, b=b, seed=seed)
    rows = []
    naive_sq, ecc_sq = [], []
    for _ in range(n_pairs):
        # Construct signature pairs with a controlled agreement level.
        agree = rng.random()
        sig_a = rng.integers(0, 1 << b, size=k, dtype=np.uint64)
        sig_b = sig_a.copy()
        flip = rng.random(k) >= agree
        # Replace disagreeing coordinates with guaranteed-different values.
        offsets = rng.integers(1, 1 << b, size=k, dtype=np.uint64)
        sig_b[flip] = (sig_b[flip] + offsets[flip]) % np.uint64(1 << b)
        s, s_h_ecc = embedding_distortion(ecc, sig_a, sig_b)
        _, s_h_naive = embedding_distortion(naive, sig_a, sig_b)
        expected = (1.0 + s) / 2.0
        rows.append((s, expected, s_h_ecc, s_h_naive))
        ecc_sq.append((s_h_ecc - expected) ** 2)
        naive_sq.append((s_h_naive - expected) ** 2)
    rows.sort()
    return DistortionResult(
        rows=rows,
        naive_rmse=float(np.sqrt(np.mean(naive_sq))),
        ecc_rmse=float(np.sqrt(np.mean(ecc_sq))),
    )


# -- ABL-RL ------------------------------------------------------------------


@dataclass
class FilterTradeoffResult:
    threshold: float
    rows: list[tuple[int, int, float, float, float]]

    def table(self) -> str:
        return format_table(
            ["l", "r", "false pos", "false neg", "total error"],
            [list(row) for row in self.rows],
        )


def run_filter_tradeoff(
    dataset: str = "set1",
    n_sets: int = 800,
    threshold: float = 0.5,
    l_values: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200),
    b: int = 6,
    seed: int = 0,
) -> FilterTradeoffResult:
    """Section 4.1/5 trade-off: more tables -> steeper filter -> less
    expected error, with diminishing returns.

    Errors are the Definition 6/7 integrals against the dataset's
    similarity distribution for an SFI at ``threshold`` (Jaccard).
    """
    sets = make_dataset(dataset, n_sets, seed)
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=100_000, seed=seed)
    s_h_grid = jaccard_to_hamming(dist.centers, b)
    s_star = jaccard_to_hamming(threshold, b)
    rows = []
    for l in l_values:
        ff = FilterFunction.for_threshold(s_star, l)
        fp = ff.expected_false_positives(s_h_grid, dist.mass, s_star)
        fn = ff.expected_false_negatives(s_h_grid, dist.mass, s_star)
        rows.append((l, ff.r, fp, fn, fp + fn))
    return FilterTradeoffResult(threshold=threshold, rows=rows)


# -- ABL-EQ / ABL-GREEDY -----------------------------------------------------


@dataclass
class PlanAblationResult:
    rows: list[tuple[str, float, float, float, float, int]]

    def table(self) -> str:
        return format_table(
            ["variant", "avg recall", "avg precision", "wc recall", "wc precision", "tables"],
            [list(row) for row in self.rows],
        )


def _plan_row(name, dist, budget, b, placement, allocator) -> tuple:
    plan = plan_index(
        dist, budget, recall_target=0.0 + 1e-9, b=b, placement=placement, allocator=allocator
    )
    stats = evaluate_ranges(plan.cut_points, plan.filters, dist, b)
    floor = dist.total_mass / 100.0
    return (
        name,
        average_recall(stats),
        average_precision(stats),
        worst_recall(stats, min_answer=floor),
        worst_precision(stats, min_answer=floor),
        plan.tables_used,
    )


def run_placement_ablation(
    dataset: str = "set1",
    n_sets: int = 800,
    budget: int = 300,
    b: int = 6,
    seed: int = 0,
) -> PlanAblationResult:
    """Lemma 4 ablation: equidepth cut placement vs uniform spacing.

    Paper shape: equidepth placement gives better worst-case precision
    (uniform placement leaves some intervals with far more pair mass
    than others).
    """
    sets = make_dataset(dataset, n_sets, seed)
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=100_000, seed=seed)
    rows = [
        _plan_row("equidepth", dist, budget, b, "equidepth", greedy_allocate),
        _plan_row("uniform", dist, budget, b, "uniform", greedy_allocate),
    ]
    return PlanAblationResult(rows=rows)


def run_allocation_ablation(
    dataset: str = "set1",
    n_sets: int = 800,
    budget: int = 300,
    b: int = 6,
    seed: int = 0,
) -> PlanAblationResult:
    """Lemma 6 ablation: greedy table allocation vs an even split.

    Paper shape: greedy allocation equalizes (and reduces) per-filter
    error, improving expected recall for the same budget.
    """
    sets = make_dataset(dataset, n_sets, seed)
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=100_000, seed=seed)
    rows = [
        _plan_row("greedy", dist, budget, b, "equidepth", greedy_allocate),
        _plan_row("uniform-alloc", dist, budget, b, "equidepth", uniform_allocate),
    ]
    return PlanAblationResult(rows=rows)


# -- ABL-DFI -----------------------------------------------------------------


@dataclass
class DfiBenefitResult:
    rows: list[tuple[str, float, float, float]]

    def table(self) -> str:
        return format_table(
            ["plan", "avg candidates", "avg recall", "avg index time"],
            [list(row) for row in self.rows],
        )


def run_dfi_benefit(
    dataset: str = "set1",
    config: ExperimentConfig | None = None,
    sigma_high: float | None = None,
    n_queries: int = 40,
) -> DfiBenefitResult:
    """Section 4.2 motivation: for low-similarity ranges ``[0, sigma]``
    a DFI probe returns the dissimilar candidate set directly, while an
    SFI-only index must fall back to "everything minus SimVector" --
    paying the whole collection plus the probe.

    ``sigma_high`` defaults to the largest DFI cut point of the built
    plan, the range endpoint where a dissimilarity probe is actually
    available (queries ending between cut points use the enclosing
    point either way).

    Paper shape: the DFI plan touches fewer candidates at equal recall
    on low ranges.
    """
    config = config or ExperimentConfig(n_sets=600, budget=200, n_queries=n_queries)
    sets = make_dataset(dataset, config.n_sets, config.seed)
    dist = SimilarityDistribution.from_sets(
        sets, sample_pairs=config.sample_pairs, seed=config.seed
    )
    plan = plan_index(dist, config.budget, recall_target=config.recall_target, b=config.b)
    if sigma_high is None:
        dfi_points = [f.point for f in plan.filters if f.kind != SFI]
        sigma_high = max(dfi_points) if dfi_points else plan.delta
    index_with = SetSimilarityIndex.from_plan(
        sets, plan, dist, k=config.k, b=config.b, seed=config.seed
    )
    sfi_only_filters = _sfi_only(plan.filters)
    greedy_allocate(sfi_only_filters, config.budget, dist, config.b)
    plan_without = replace(plan, filters=sfi_only_filters)
    index_without = SetSimilarityIndex.from_plan(
        sets, plan_without, dist, k=config.k, b=config.b, seed=config.seed
    )
    rng = np.random.default_rng(config.seed + 5)
    queries = [int(rng.integers(0, len(sets))) for _ in range(n_queries)]
    rows = []
    for label, index in (("with DFIs", index_with), ("SFI only", index_without)):
        harness = ExperimentHarness(sets, index)
        cands, recalls, times = [], [], []
        for qi in queries:
            record = harness.run_query(
                RangeQuery(qi, 0.0, sigma_high), measure_scan=False
            )
            cands.append(record.n_candidates)
            recalls.append(record.recall)
            times.append(record.index_time)
        rows.append(
            (label, float(np.mean(cands)), float(np.mean(recalls)), float(np.mean(times)))
        )
    return DfiBenefitResult(rows=rows)


def _sfi_only(filters: list[PlannedFilter]) -> list[PlannedFilter]:
    """Re-kind every planned filter as an SFI (dropping DFI duplicates)."""
    points = sorted({f.point for f in filters})
    return [PlannedFilter(point, SFI) for point in points]
