"""Shared infrastructure for the benchmark suite.

Each ``bench_*.py`` regenerates one evaluation artifact of the paper
(see DESIGN.md's experiment index): it runs the corresponding driver
from :mod:`repro.eval.experiments`, prints the resulting table (visible
in ``pytest benchmarks/ --benchmark-only`` output), writes it under
``benchmarks/results/`` and feeds a representative kernel to
pytest-benchmark for wall-clock numbers.

Scale: the paper used 200,000-set collections and 1,000 queries per
bucket on a 2001 testbed.  Defaults here are laptop-scale (see
``BenchScale``); set ``REPRO_BENCH_SCALE=large`` for a heavier run.
Response "time" inside the tables is simulated I/O cost (the shared
cost model with random/sequential = 8), so the *shape* of every figure
is scale-stable; pytest-benchmark adds real wall-clock per kernel.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    n_sets: int
    n_queries: int
    sample_pairs: int
    k: int


_SCALES = {
    "small": BenchScale(n_sets=1200, n_queries=120, sample_pairs=60_000, k=64),
    # Probe cost is budget-sized while scan cost is collection-sized;
    # n_sets must sit comfortably above the table budget (1000 in the
    # Fig. 7 setup) for the paper's crossover shape to be visible.
    "default": BenchScale(n_sets=3000, n_queries=150, sample_pairs=100_000, k=100),
    "large": BenchScale(n_sets=6000, n_queries=300, sample_pairs=200_000, k=100),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


@pytest.fixture(scope="session")
def trace_queries() -> bool:
    """Whether benches should collect per-query trace summaries.

    Enabled by ``REPRO_BENCH_TRACE=1``; drivers pass it through as
    ``ExperimentHarness.run(collect_trace=...)`` and attach the
    resulting ``QueryRecord.trace_summary`` dicts to their JSON output
    via :func:`emit_json`.  Off by default: tracing every query costs
    a few percent of throughput.
    """
    return os.environ.get("REPRO_BENCH_TRACE", "") not in ("", "0")


@pytest.fixture
def emit(capfd):
    """Print a result table past pytest's capture and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        block = f"\n=== {experiment_id} ===\n{text}\n"
        with capfd.disabled():
            print(block)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(block)

    return _emit


@pytest.fixture
def emit_json():
    """Persist a structured (JSON) result artifact alongside the tables.

    Used for machine-readable outputs -- per-query trace summaries,
    metrics snapshots -- that the text tables cannot carry.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, payload) -> Path:
        path = RESULTS_DIR / f"{experiment_id}.json"
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path

    return _emit
