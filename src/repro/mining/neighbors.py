"""Nearest- and furthest-neighbour retrieval.

Section 7 connects the paper to Indyk-Motwani locality-sensitive
hashing (nearest neighbour) and to Indyk's reduction from *furthest*
neighbour to nearest neighbour "using a method similar to our
Dissimilarity Filter Index".  Both queries fall out of the range
primitive:

* nearest: descend the similarity cut points with ``query_above``
  until something answers (the k=1 case of :mod:`repro.mining.topk`);
* furthest: ascend with ``query_below`` -- each probe is exactly the
  DFI/complement trick of Theorem 2.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.index import SetSimilarityIndex
from repro.mining.topk import top_k_similar


def nearest_neighbor(
    index: SetSimilarityIndex,
    elements: Iterable,
    floor: float = 0.0,
    include_self: bool = True,
) -> tuple[int, float] | None:
    """The most similar indexed set (approximate; verified similarity).

    Returns None when nothing at or above ``floor`` is found.
    """
    top = top_k_similar(index, elements, k=1, floor=floor, include_self=include_self)
    return top[0] if top else None


def furthest_neighbor(
    index: SetSimilarityIndex,
    elements: Iterable,
) -> tuple[int, float] | None:
    """The *least* similar indexed set (approximate; verified).

    Walks the plan's cut points from the bottom with ``query_below``;
    the first non-empty answer contains the furthest sets the filters
    can see, and its minimum-similarity member is returned.  The final
    fallback range [0, 1] guarantees an answer on non-empty indexes.
    """
    query_set = frozenset(elements)
    if index.n_sets == 0:
        return None
    ceilings = sorted(index.plan.cut_points) + [1.0]
    for ceiling in ceilings:
        result = index.query_below(query_set, ceiling)
        if result.answers:
            sid, similarity = min(
                result.answers, key=lambda pair: (pair[1], pair[0])
            )
            return sid, similarity
    return None
