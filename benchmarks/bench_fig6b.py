"""FIG6B -- paper Fig. 6(b): precision & recall per result-size bucket
with the hash-table budget doubled to 1000.

Paper shape to reproduce: the recall goal is still met, and precision
*improves* over the 500-table configuration -- the construction
algorithm affords more similarity intervals, so query ranges are
enclosed more tightly.
"""

import numpy as np
import pytest

from repro.eval.experiments import ExperimentConfig, run_fig6

BUDGET = 1000


@pytest.fixture(scope="module")
def config(scale):
    return ExperimentConfig(
        n_sets=scale.n_sets,
        budget=BUDGET,
        n_queries=scale.n_queries,
        sample_pairs=scale.sample_pairs,
        k=scale.k,
    )


def test_fig6b(benchmark, config, emit):
    result = benchmark.pedantic(
        run_fig6, args=(config,), kwargs={"budget": BUDGET}, rounds=1, iterations=1
    )
    from repro.eval.plots import fig6_ascii

    bars = "\n\n".join(
        f"[{name}]\n{fig6_ascii(buckets)}" for name, buckets in result.summaries.items()
    )
    emit(
        "FIG6B",
        result.table()
        + "\nexpected (construction-time) recall: "
        + ", ".join(f"{k}={v:.3f}" for k, v in result.expected_recall.items())
        + "\n\n" + bars,
    )
    for name, buckets in result.summaries.items():
        populated = [s for s in buckets if s.n_queries > 0]
        assert populated, f"{name}: no bucket received queries"
        weighted = np.average(
            [s.recall for s in populated], weights=[s.n_queries for s in populated]
        )
        assert weighted > 0.7
