"""Unit tests for set similarity measures (Definition 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import containment, dice, jaccard, jaccard_distance, overlap

small_sets = st.frozensets(st.integers(0, 30), max_size=15)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint(self):
        assert jaccard({1, 2}, {3, 4}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(2 / 4)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard(set(), {1}) == 0.0

    def test_accepts_iterables(self):
        assert jaccard([1, 2, 2, 3], (3, 2, 1)) == 1.0

    def test_accepts_strings_as_elements(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    @given(small_sets, small_sets)
    @settings(max_examples=100)
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(small_sets, small_sets)
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(small_sets)
    @settings(max_examples=50)
    def test_identity(self, a):
        assert jaccard(a, a) == 1.0

    @given(small_sets, small_sets)
    @settings(max_examples=100)
    def test_one_iff_equal(self, a, b):
        assert (jaccard(a, b) == 1.0) == (a == b)

    @given(small_sets, small_sets)
    @settings(max_examples=100)
    def test_subset_formula(self, a, b):
        """sim = |A&B| / |A|B| by definition."""
        if not a and not b:
            return
        assert jaccard(a, b) == pytest.approx(len(a & b) / len(a | b))


class TestJaccardDistanceMetric:
    """The paper notes 1 - sim is a metric; verify the axioms."""

    @given(small_sets, small_sets)
    @settings(max_examples=100)
    def test_non_negative_and_symmetric(self, a, b):
        d = jaccard_distance(a, b)
        assert d >= 0.0
        assert d == jaccard_distance(b, a)

    @given(small_sets, small_sets)
    @settings(max_examples=100)
    def test_identity_of_indiscernibles(self, a, b):
        assert (jaccard_distance(a, b) == 0.0) == (a == b)

    @given(small_sets, small_sets, small_sets)
    @settings(max_examples=200)
    def test_triangle_inequality(self, a, b, c):
        assert jaccard_distance(a, c) <= (
            jaccard_distance(a, b) + jaccard_distance(b, c) + 1e-12
        )


class TestOtherMeasures:
    def test_containment_direction(self):
        assert containment({1, 2}, {1, 2, 3}) == 1.0
        assert containment({1, 2, 3}, {1, 2}) == pytest.approx(2 / 3)

    def test_containment_empty(self):
        assert containment(set(), {1}) == 1.0

    def test_dice_known(self):
        assert dice({1, 2, 3}, {2, 3, 4}) == pytest.approx(4 / 6)

    def test_dice_empty(self):
        assert dice(set(), set()) == 1.0
        assert dice(set(), {1}) == 0.0

    def test_overlap_subset_is_one(self):
        assert overlap({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_overlap_empty(self):
        assert overlap(set(), set()) == 1.0
        assert overlap(set(), {1}) == 0.0

    @given(small_sets, small_sets)
    @settings(max_examples=50)
    def test_dice_vs_jaccard_order(self, a, b):
        """Dice >= Jaccard always (2j/(1+j) >= j)."""
        assert dice(a, b) >= jaccard(a, b) - 1e-12

    @given(small_sets, small_sets)
    @settings(max_examples=50)
    def test_overlap_bounds_jaccard(self, a, b):
        assert overlap(a, b) >= jaccard(a, b) - 1e-12
