"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, read_sets


@pytest.fixture
def sets_file(tmp_path):
    path = tmp_path / "sets.txt"
    path.write_text(
        "apple banana cherry\n"
        "banana cherry date\n"
        "\n"  # blank lines are skipped
        "x y z\n"
        "apple banana cherry date\n"
    )
    return path


class TestReadSets:
    def test_parses_lines(self, sets_file):
        sets = read_sets(sets_file)
        assert len(sets) == 4
        assert sets[0] == frozenset({"apple", "banana", "cherry"})

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(ValueError):
            read_sets(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(
            ["build", "--input", "a.txt", "--output", "b.ssi"]
        )
        assert args.budget == 500
        assert args.recall == 0.9


class TestEndToEnd:
    def test_build_query_stats(self, sets_file, tmp_path, capsys):
        index_path = tmp_path / "demo.ssi"
        rc = main(
            [
                "build",
                "--input", str(sets_file),
                "--output", str(index_path),
                "--budget", "20",
                "--k", "16",
            ]
        )
        assert rc == 0
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "indexed 4 sets" in out

        rc = main(
            [
                "query",
                "--index", str(index_path),
                "--set", "apple banana cherry",
                "--low", "0.9",
                "--high", "1.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0\t1.0000" in out

        rc = main(["stats", "--index", str(index_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sets indexed:      4" in out

    def test_demo_command(self, capsys):
        rc = main(["demo", "--n-sets", "60"])
        assert rc == 0
        assert "demo index" in capsys.readouterr().out
