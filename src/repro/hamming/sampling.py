"""Random bit-position sampling for filter-index hash keys.

The Similarity Filter Index (Section 4.1) builds each of its ``l`` hash
tables from a fixed random sample of ``r`` of the ``D`` bit positions.
Two vectors with Hamming similarity ``s`` agree on all ``r`` sampled
positions with probability ``s ** r`` (positions are sampled uniformly
with replacement, matching the analysis of Equation 4), which is what
turns the hash table into a probabilistic filter.

A :class:`BitSampler` freezes one such sample and extracts the sampled
bits of any packed vector into a compact ``bytes`` key suitable for
hashing.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics

#: Keys extracted by the bulk (build-time) path.  Probe-time key
#: extraction is one key per table probe, so it is already counted by
#: ``hashtable.probes`` and not re-counted in the hot ``key()`` path.
_KEYS = metrics.counter("hamming.keys_extracted")


class BitSampler:
    """Extracts ``r`` fixed random bit positions from packed vectors.

    Parameters
    ----------
    n_bits:
        Dimensionality ``D`` of the Hamming space.
    r:
        Number of positions to sample.
    rng:
        Source of randomness used once, at construction, to freeze the
        sample.  The same sampler must be applied to both the data and
        the query vectors.
    """

    def __init__(self, n_bits: int, r: int, rng: np.random.Generator):
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        if r <= 0:
            raise ValueError(f"r must be positive, got {r}")
        self.n_bits = n_bits
        self.r = r
        # Sampling with replacement matches the s**r collision analysis
        # exactly and permits r > n_bits.
        self.positions = rng.integers(0, n_bits, size=r, dtype=np.int64)
        self._word_index = (self.positions // 64).astype(np.int64)
        self._bit_offset = (self.positions % 64).astype(np.uint64)

    @property
    def key_bytes(self) -> int:
        """Byte width of every key this sampler emits."""
        return -(-self.r // 8)

    def key(self, vector: np.ndarray) -> bytes:
        """Hash key of a single packed vector: its sampled bits, packed."""
        bits = (vector[self._word_index] >> self._bit_offset) & np.uint64(1)
        return np.packbits(bits.astype(np.uint8)).tobytes()

    def keys(self, matrix: np.ndarray) -> list[bytes]:
        """Hash keys for every row of a packed matrix (vectorized)."""
        _KEYS.inc(matrix.shape[0])
        bits = (matrix[:, self._word_index] >> self._bit_offset) & np.uint64(1)
        packed = np.packbits(bits.astype(np.uint8), axis=1)
        return [row.tobytes() for row in packed]

    def key_words(self, matrix: np.ndarray) -> np.ndarray:
        """Every row's key as little-endian uint64 words, never leaving
        numpy: row ``i`` holds the words of ``key(matrix[i])`` with the
        last word zero-padded.  Feeds
        :func:`repro.storage.hashtable.hash_words` (with
        :attr:`key_bytes`) so the bulk build fingerprints a whole
        matrix without materializing per-row ``bytes`` objects.
        """
        _KEYS.inc(matrix.shape[0])
        bits = (matrix[:, self._word_index] >> self._bit_offset) & np.uint64(1)
        packed = np.packbits(bits.astype(np.uint8), axis=1)
        width = packed.shape[1]
        n_words = -(-width // 8)
        if width != n_words * 8:
            padded = np.zeros((packed.shape[0], n_words * 8), dtype=np.uint8)
            padded[:, :width] = packed
            packed = padded
        # packbits may hand back a strided result; the u8 view needs a
        # contiguous last axis.
        return np.ascontiguousarray(packed).view("<u8")

    def __repr__(self) -> str:
        return f"BitSampler(n_bits={self.n_bits}, r={self.r})"
