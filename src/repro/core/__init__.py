"""The paper's primary contribution: tunable similar-set retrieval.

Pipeline (Sections 3-5):

* :mod:`repro.core.similarity` -- the Jaccard measure (Definition 1).
* :mod:`repro.core.minhash` -- min-wise signatures (Section 3.1).
* :mod:`repro.core.ecc` -- the distance-``m/2`` code (Section 3.2).
* :mod:`repro.core.embedding` -- set -> Hamming embedding (Theorem 1).
* :mod:`repro.core.filter_function` -- ``p_{r,l}`` (Equation 4).
* :mod:`repro.core.filter_index` -- SFI and DFI (Sections 4.1-4.2).
* :mod:`repro.core.distribution` -- ``D_S`` and equidepth (Section 5).
* :mod:`repro.core.optimizer` -- Fig. 4 / Fig. 5 construction.
* :mod:`repro.core.index` -- the composite index (Section 4.3).
* :mod:`repro.core.metrics` -- precision/recall scoring.
"""

from repro.core.codec import BBitPacker, CodecError, CodecSpec, parse_codec
from repro.core.distribution import SimilarityDistribution
from repro.core.ecc import HadamardCode
from repro.core.embedding import SetEmbedder, hamming_to_jaccard, jaccard_to_hamming
from repro.core.filter_function import FilterFunction, filter_probability, solve_r, turning_point
from repro.core.filter_index import DissimilarityFilterIndex, SimilarityFilterIndex
from repro.core.index import QueryResult, SetSimilarityIndex
from repro.core.metrics import QueryQuality, evaluate_query
from repro.core.minhash import MinHasher, SuperMinHasher
from repro.core.optimizer import (
    DFI,
    SFI,
    CaptureModel,
    IndexPlan,
    PlannedFilter,
    RangeStats,
    average_precision,
    average_recall,
    default_range_workload,
    evaluate_plan,
    evaluate_ranges,
    greedy_allocate,
    place_filters,
    plan_index,
    uniform_allocate,
    worst_precision,
    worst_recall,
)
from repro.core.estimator import (
    chernoff_error_bound,
    estimate_interval,
    required_signature_length,
)
from repro.core.persistence import load_index, save_index
from repro.core.planner import PlanEstimate, QueryPlanner
from repro.core.similarity import containment, dice, jaccard, jaccard_distance, overlap
from repro.core.weighted import (
    WeightedSetSimilarityIndex,
    quantize,
    weighted_jaccard,
)

__all__ = [
    "BBitPacker",
    "CodecError",
    "CodecSpec",
    "DFI",
    "SFI",
    "CaptureModel",
    "DissimilarityFilterIndex",
    "SuperMinHasher",
    "parse_codec",
    "RangeStats",
    "average_precision",
    "average_recall",
    "default_range_workload",
    "evaluate_ranges",
    "worst_precision",
    "worst_recall",
    "FilterFunction",
    "HadamardCode",
    "IndexPlan",
    "MinHasher",
    "PlannedFilter",
    "QueryQuality",
    "QueryResult",
    "PlanEstimate",
    "QueryPlanner",
    "SetEmbedder",
    "SetSimilarityIndex",
    "SimilarityDistribution",
    "SimilarityFilterIndex",
    "WeightedSetSimilarityIndex",
    "chernoff_error_bound",
    "containment",
    "estimate_interval",
    "load_index",
    "quantize",
    "required_signature_length",
    "save_index",
    "weighted_jaccard",
    "dice",
    "evaluate_plan",
    "evaluate_query",
    "filter_probability",
    "greedy_allocate",
    "hamming_to_jaccard",
    "jaccard",
    "jaccard_distance",
    "jaccard_to_hamming",
    "overlap",
    "place_filters",
    "plan_index",
    "solve_r",
    "turning_point",
    "uniform_allocate",
]
