"""Equivalence and report tests for the bulk build pipeline.

The contract under test (repro.exec.build + the bulk paths it drives):
a bulk-built index is *bit-identical* to the legacy per-entry insert
build -- same page chains (including page ids), same page contents,
same bucket directories, same I/O accounting -- at every worker count.
"""

import numpy as np
import pytest

from repro.core.distribution import SimilarityDistribution
from repro.core.index import SetSimilarityIndex
from repro.core.optimizer import plan_index
from repro.exec.build import build_units, bulk_load_filters, lpt_makespan
from repro.obs.explain import BUILD_PHASE_SPANS, build_summaries


def _collection(n_sets=60, seed=0, universe=400):
    rng = np.random.default_rng(seed)
    return [
        frozenset(
            int(e)
            for e in rng.choice(universe, size=int(rng.integers(3, 25)),
                                replace=False)
        )
        for _ in range(n_sets)
    ]


def _plan_for(sets, budget=60):
    dist = SimilarityDistribution.from_sets(sets, n_bins=50)
    plan = plan_index(dist, budget, recall_target=0.85, b=4)
    return dist, plan


def _build(sets, dist, plan, **kwargs):
    return SetSimilarityIndex.from_plan(
        sets, plan, dist, k=32, b=4, seed=3, **kwargs
    )


def _filters_of(index):
    """(key, filter) pairs in a comparison-stable order, DFIs unwrapped."""
    out = []
    for kind, filters in (("sfi", index._sfis), ("dfi", index._dfis)):
        for point, fi in sorted(filters.items()):
            out.append((f"{kind}({point})", fi._sfi if hasattr(fi, "_sfi") else fi))
    return out


def _assert_bit_identical(a, b):
    """Every chain, page, directory and counter of ``b`` matches ``a``."""
    filters_a, filters_b = _filters_of(a), _filters_of(b)
    assert [k for k, _ in filters_a] == [k for k, _ in filters_b]
    for (key, fa), (_, fb) in zip(filters_a, filters_b):
        for ta, tb in zip(fa._tables, fb._tables):
            assert ta._chains == tb._chains, key  # page ids included
            assert ta.n_entries == tb.n_entries
            assert ta.load_stats() == tb.load_stats()
            for chain in ta._chains:
                for pid in chain:
                    assert (
                        ta.pager.peek(pid).slots == tb.pager.peek(pid).slots
                    ), key
            for bucket in range(ta.n_buckets):
                assert (
                    ta._bucket_directory(bucket) == tb._bucket_directory(bucket)
                ), key
    assert a._sizes == b._sizes
    assert set(a._vectors) == set(b._vectors)
    for sid in a._vectors:
        assert np.array_equal(a._vectors[sid], b._vectors[sid])
        assert np.array_equal(a._chashes[sid], b._chashes[sid])


class TestBuildEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_bulk_matches_insert_bit_identical(self, workers):
        sets = _collection(n_sets=80, seed=7)
        dist, plan = _plan_for(sets)
        a = _build(sets, dist, plan, build_method="insert")
        io_a = a.io.snapshot()  # before any probe perturbs the counters
        b = _build(sets, dist, plan, build_method="bulk", workers=workers)
        io_b = b.io.snapshot()
        assert io_a.as_dict() == io_b.as_dict(), workers
        _assert_bit_identical(a, b)

    @pytest.mark.parametrize("seed", [0, 11, 23])
    def test_query_results_identical(self, seed):
        sets = _collection(n_sets=50, seed=seed)
        dist, plan = _plan_for(sets)
        a = _build(sets, dist, plan, build_method="insert")
        b = _build(sets, dist, plan, build_method="bulk", workers=4)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            q = sets[int(rng.integers(len(sets)))]
            lo = float(rng.uniform(0.0, 0.6))
            hi = float(rng.uniform(lo, 1.0))
            ra = a.query(q, lo, hi)
            rb = b.query(q, lo, hi)
            assert ra.answers == rb.answers
            assert ra.candidates == rb.candidates
            assert ra.io.as_dict() == rb.io.as_dict()

    def test_empty_collection(self):
        sets = _collection(n_sets=10, seed=5)
        dist, plan = _plan_for(sets)
        index = _build([], dist, plan, build_method="bulk")
        assert index.n_sets == 0
        assert index.build_report is None or index.build_report["filters"] is None

    def test_validation(self):
        sets = _collection(n_sets=5, seed=1)
        dist, plan = _plan_for(sets)
        with pytest.raises(ValueError):
            _build(sets, dist, plan, build_method="bogus")
        with pytest.raises(ValueError):
            _build(sets, dist, plan, workers=0)
        with pytest.raises(ValueError):
            bulk_load_filters([], np.zeros((0, 1), dtype=np.uint8), [], workers=0)


class TestBuildReport:
    def test_report_structure(self):
        sets = _collection(n_sets=40, seed=3)
        dist, plan = _plan_for(sets)
        index = _build(sets, dist, plan, build_method="bulk", workers=2)
        report = index.build_report
        assert report is not None
        assert report["n_sets"] == len(sets)
        assert set(report["phases"]) >= {
            "store_load_seconds", "embed_corpus_seconds",
        }
        filters = report["filters"]
        n_units = len(build_units(list(index._all_filters())))
        assert filters["workers"] == 2
        assert filters["n_units"] == n_units
        assert filters["entries"] == len(sets) * n_units
        assert filters["tail_replans"] == 0  # fresh tables: tails known
        assert len(filters["units"]) == n_units
        for unit in filters["units"]:
            assert unit["entries"] == len(sets)
            assert unit["plan_seconds"] >= 0.0
            assert unit["label"]

    def test_insert_build_attaches_no_report(self):
        sets = _collection(n_sets=20, seed=9)
        dist, plan = _plan_for(sets)
        index = _build(sets, dist, plan, build_method="insert")
        assert index.build_report is None

    def test_build_classmethod_adds_planning_phases(self):
        sets = _collection(n_sets=30, seed=2)
        index = SetSimilarityIndex.build(
            sets, budget=40, recall_target=0.85, k=32, b=4, seed=1, workers=2
        )
        phases = index.build_report["phases"]
        assert "estimate_distribution_seconds" in phases
        assert "plan_index_seconds" in phases

    def test_harness_build_summary_strips_units(self):
        from repro.eval.harness import ExperimentHarness

        sets = _collection(n_sets=30, seed=4)
        dist, plan = _plan_for(sets)
        index = _build(sets, dist, plan, build_method="bulk")
        summary = ExperimentHarness(sets, index).build_summary()
        assert summary is not None
        assert "units" not in summary["filters"]
        assert summary["filters"]["entries"] == index.build_report["filters"]["entries"]
        baseline = _build(sets, dist, plan, build_method="insert")
        assert ExperimentHarness(sets, baseline).build_summary() is None


class TestBuildTrace:
    def test_explain_build_spans(self):
        sets = _collection(n_sets=30, seed=6)
        index = SetSimilarityIndex.build(
            sets, budget=40, recall_target=0.85, k=32, b=4, seed=1,
            explain=True,
        )
        root = index.build_trace
        assert root is not None and root.name == "build"
        names = {span.name for span in root.walk()}
        assert set(BUILD_PHASE_SPANS) <= names
        summaries = build_summaries(root)
        assert [s["phase"] for s in summaries] == list(BUILD_PHASE_SPANS)
        fb = next(s for s in summaries if s["phase"] == "filter_build")
        assert fb["entries"] == index.build_report["filters"]["entries"]

    def test_untraced_build_has_no_trace(self):
        sets = _collection(n_sets=15, seed=8)
        index = SetSimilarityIndex.build(
            sets, budget=40, recall_target=0.85, k=32, b=4, seed=1
        )
        assert index.build_trace is None

    def test_build_trace_not_pickled(self, tmp_path):
        sets = _collection(n_sets=15, seed=8)
        index = SetSimilarityIndex.build(
            sets, budget=40, recall_target=0.85, k=32, b=4, seed=1,
            explain=True,
        )
        assert index.build_trace is not None
        path = tmp_path / "index.ssi"
        index.save(path)
        loaded = SetSimilarityIndex.load(path)
        assert loaded.build_trace is None


class TestLptMakespan:
    def test_single_worker_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_no_tasks(self):
        assert lpt_makespan([], 4) == 0.0

    def test_bounded_by_max_and_sum(self):
        tasks = [5.0, 3.0, 3.0, 2.0, 1.0]
        for workers in (2, 3, 8):
            span = lpt_makespan(tasks, workers)
            assert max(tasks) <= span <= sum(tasks)

    def test_more_workers_never_slower(self):
        tasks = [4.0, 3.0, 2.0, 2.0, 1.0, 1.0]
        spans = [lpt_makespan(tasks, w) for w in (1, 2, 3, 4)]
        assert spans == sorted(spans, reverse=True)
