"""Property tests for the log-bucketed HDR histogram (repro.obs.hdr).

The contracts pinned here are the ones the telemetry layer leans on:
quantiles within the documented relative-error bound, merge() exactly
equal to histogramming the concatenated streams, delta()/apply_delta()
recovering exactly the in-between observations, and fold order
independence (the property that makes cross-shard / cross-process
aggregation deterministic).
"""

from __future__ import annotations

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.obs.hdr import (
    DEFAULT_PRECISION,
    MIN_TRACKABLE,
    HdrHistogram,
    state_delta,
    state_is_empty,
)

# Positive latencies spanning nine decades; the histogram must hold its
# error bound across all of them.
positive_values = st.floats(
    min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(positive_values, min_size=1, max_size=60)
quantile_qs = st.floats(min_value=0.0, max_value=1.0)


def exact_quantile(values: list[float], q: float) -> float:
    """The convention quantile() documents: lower order statistic at
    rank ceil(q*n)."""
    rank = max(1, math.ceil(q * len(values)))
    return sorted(values)[rank - 1]


def build(values, precision=DEFAULT_PRECISION, name="h") -> HdrHistogram:
    h = HdrHistogram(name, precision=precision)
    h.observe_many(values)
    return h


def _count_state(state: dict) -> dict:
    """The exact-integer part of a state (float `sum` is additive only
    up to rounding-order, so it is compared approximately elsewhere)."""
    return {k: v for k, v in state.items() if k != "sum"}


class TestQuantileAccuracy:
    @given(values=value_lists, q=quantile_qs)
    @settings(max_examples=150, deadline=None)
    def test_quantile_within_relative_error(self, values, q):
        h = build(values)
        exact = exact_quantile(values, q)
        got = h.quantile(q)
        assert got == pytest.approx(exact, rel=h.precision)

    @given(values=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_extremes_and_moments_are_exact(self, values):
        h = build(values)
        assert h.count == len(values)
        assert h.min == min(values)
        assert h.max == max(values)
        assert h.total == pytest.approx(sum(values))
        assert h.mean == pytest.approx(sum(values) / len(values))

    @given(precision=st.floats(min_value=0.001, max_value=0.2),
           value=positive_values)
    @settings(max_examples=100, deadline=None)
    def test_representative_respects_configured_precision(self, precision, value):
        h = HdrHistogram("p", precision=precision)
        rep = h.representative(h.bucket_index(value))
        assert abs(rep - value) <= precision * value * (1 + 1e-9)

    def test_zero_and_negative_land_in_zero_bucket(self):
        h = HdrHistogram("z")
        h.observe(0.0)
        h.observe(-1.5)
        h.observe(MIN_TRACKABLE / 2)
        assert h.count == 3
        assert h.quantile(0.5) == 0.0
        assert h.state()["zero_count"] == 3

    def test_empty_quantile_is_zero(self):
        assert HdrHistogram("e").quantile(0.99) == 0.0

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            HdrHistogram("bad", precision=0.0)
        with pytest.raises(ValueError):
            HdrHistogram("bad", precision=1.0)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            HdrHistogram("h").quantile(1.5)


class TestMergeAlgebra:
    @given(xs=value_lists, ys=value_lists, q=quantile_qs)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenated_stream(self, xs, ys, q):
        merged = build(xs, name="a").merge(build(ys, name="b"))
        concat = build(xs + ys, name="c")
        # Bucket counts are integers, so the merge is literally the
        # histogram of the concatenated stream: identical counts, hence
        # identical quantiles.  (Only the float `sum` accumulates in a
        # different order.)
        assert _count_state(merged.state()) == _count_state(concat.state())
        assert merged.total == pytest.approx(concat.total)
        assert merged.quantile(q) == concat.quantile(q)

    @given(xs=value_lists, ys=value_lists, zs=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_order_independent(self, xs, ys, zs):
        left = build(xs, name="l").merge(build(ys)).merge(build(zs))
        right = build(zs, name="r").merge(build(xs)).merge(build(ys))
        assert _count_state(left.state()) == _count_state(right.state())
        assert left.total == pytest.approx(right.total)

    def test_merge_rejects_mismatched_precision(self):
        a = HdrHistogram("a", precision=0.01)
        b = HdrHistogram("b", precision=0.05)
        b.observe(1.0)
        with pytest.raises(ValueError, match="precision"):
            a.merge(b)

    @given(values=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_state_survives_json_roundtrip(self, values):
        h = build(values)
        restored = HdrHistogram("r")
        restored.apply_delta(json.loads(json.dumps(h.state())))
        assert restored.state() == h.state()


class TestDeltaAlgebra:
    @given(first=value_lists, second=value_lists)
    @settings(max_examples=80, deadline=None)
    def test_delta_recovers_in_between_observations(self, first, second):
        h = HdrHistogram("d")
        h.observe_many(first)
        before = h.state()
        h.observe_many(second)
        delta = h.delta(before)
        replayed = HdrHistogram("r")
        replayed.apply_delta(delta)
        expected = build(second, name="e")
        # Counts are exactly the in-between stream; min/max are the
        # conservative envelope taken from the `after` endpoint.
        assert replayed.count == expected.count
        state, expected_state = replayed.state(), expected.state()
        assert state["counts"] == expected_state["counts"]
        assert state["zero_count"] == expected_state["zero_count"]
        assert state["sum"] == pytest.approx(expected_state["sum"])

    def test_empty_delta_does_not_corrupt_extremes(self):
        h = HdrHistogram("h")
        h.observe(5.0)
        before = h.state()
        empty = h.delta(before)
        assert state_is_empty(empty)
        target = HdrHistogram("t")
        target.observe(1.0)
        target.apply_delta(empty)
        assert target.min == 1.0
        assert target.max == 1.0
        assert target.count == 1

    @given(first=value_lists, second=value_lists)
    @settings(max_examples=40, deadline=None)
    def test_state_delta_then_fold_reconstructs_after(self, first, second):
        before = build(first, name="b").state()
        after = build(first + second, name="a").state()
        delta = state_delta(before, after)
        rebuilt = HdrHistogram("r")
        rebuilt.apply_delta(before)
        rebuilt.apply_delta(delta)
        assert rebuilt.state()["counts"] == after["counts"]
        assert rebuilt.count == len(first) + len(second)


class TestRegistryFold:
    """Fold order independence at the registry level: the property the
    process-backend executor relies on when several worker task deltas
    arrive in arbitrary completion order."""

    def _worker_delta(self, registry_cls, values, gauge_value):
        reg = registry_cls()
        before = reg.registry_values()
        reg.counter("task.count").inc(len(values))
        reg.gauge("task.gauge").set(gauge_value)
        reg.hdr("task.latency").observe_many(values)
        reg.histogram("task.sizes").observe(len(values))
        return metrics.registry_delta(before, reg.registry_values())

    @given(streams=st.lists(value_lists, min_size=2, max_size=5),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_fold_order_independent(self, streams, seed):
        deltas = [
            self._worker_delta(metrics.MetricsRegistry, values, i)
            for i, values in enumerate(streams)
        ]
        shuffled = list(deltas)
        random.Random(seed).shuffle(shuffled)

        a = metrics.MetricsRegistry()
        a.apply_deltas(metrics.merge_registry_deltas(deltas))
        b = metrics.MetricsRegistry()
        b.apply_deltas(metrics.merge_registry_deltas(shuffled))

        va, vb = a.registry_values(), b.registry_values()
        assert va["counters"] == vb["counters"]
        assert va["hdr"]["task.latency"]["counts"] == \
            vb["hdr"]["task.latency"]["counts"]
        assert va["histograms"]["task.sizes"]["counts"] == \
            vb["histograms"]["task.sizes"]["counts"]
        # Gauges are last-write-wins point samples: order-dependent by
        # design, but always one of the observed values.
        assert vb["gauges"]["task.gauge"] in range(len(streams))

    def test_incremental_folds_match_single_merge(self):
        streams = [[1.0, 2.0], [3.0], [0.5, 4.0, 2.5]]
        deltas = [
            self._worker_delta(metrics.MetricsRegistry, values, i)
            for i, values in enumerate(streams)
        ]
        one = metrics.MetricsRegistry()
        one.apply_deltas(metrics.merge_registry_deltas(deltas))
        many = metrics.MetricsRegistry()
        for delta in deltas:
            many.apply_deltas(delta)
        vo, vm = one.registry_values(), many.registry_values()
        assert vo["counters"] == vm["counters"]
        assert vo["hdr"]["task.latency"]["counts"] == \
            vm["hdr"]["task.latency"]["counts"]

    def test_reset_registry_values_symmetry(self):
        """The satellite fix: reset() zeroes exactly what
        registry_values() reports, for every instrument kind."""
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(2.0)
        reg.hdr("x").observe(1.5)
        populated = reg.registry_values()
        assert populated["counters"]["c"] == 3
        assert populated["gauges"]["g"] == 7.0
        assert populated["histograms"]["h"]["count"] == 1
        assert populated["hdr"]["x"]["count"] == 1
        reg.reset()
        zeroed = reg.registry_values()
        assert zeroed["counters"]["c"] == 0
        assert zeroed["gauges"]["g"] == 0.0
        assert zeroed["histograms"]["h"]["count"] == 0
        assert zeroed["hdr"]["x"]["count"] == 0
        # Cached instrument references stay live after reset.
        reg.counter("c").inc()
        assert reg.registry_values()["counters"]["c"] == 1
