"""Weighted sets: weighted Jaccard similarity and indexing support.

The paper fixes ``sim`` to the Jaccard coefficient but frames the
problem for "suitably defined notions of similarity between sets".
Real recommendation data is weighted (purchase counts, page dwell
time); the standard generalization is the *weighted Jaccard*
similarity of two non-negative weight vectors,

    sim_w(A, B) = sum_e min(A_e, B_e) / sum_e max(A_e, B_e),

which reduces to plain Jaccard on 0/1 weights.

Indexing reduces to the unweighted machinery by *quantization*: an
element with weight ``w`` becomes ``round(w / quantum)`` replica
elements ``(e, 0), (e, 1), ...``.  Plain Jaccard over replica sets
equals weighted Jaccard over the quantized weights exactly, so the
whole pipeline -- signatures, ECC embedding, filter indices, the
optimizer -- applies unchanged.  The price is the quantization error
(bounded by the quantum relative to the weight mass) and signature
cost growing with total weight; both are documented and tested.

``WeightedSetSimilarityIndex`` wraps :class:`SetSimilarityIndex` with
this transformation.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.index import QueryResult, SetSimilarityIndex


def weighted_jaccard(a: Mapping, b: Mapping) -> float:
    """Weighted Jaccard ``sum min / sum max`` of two weight mappings.

    Missing elements have weight 0; negative weights are rejected.
    Two all-zero (or empty) mappings have similarity 1, matching the
    unweighted convention for two empty sets.
    """
    _check_weights(a)
    _check_weights(b)
    mins, maxs = [], []
    for element in a.keys() | b.keys():
        wa = a.get(element, 0.0)
        wb = b.get(element, 0.0)
        mins.append(min(wa, wb))
        maxs.append(max(wa, wb))
    # fsum: exactly rounded, so the result is independent of the
    # (argument-order-dependent) iteration order of the key union.
    max_sum = math.fsum(maxs)
    if max_sum == 0.0:
        return 1.0
    return math.fsum(mins) / max_sum


def quantize(weights: Mapping, quantum: float) -> frozenset:
    """Replica-set encoding of a weight mapping.

    Element ``e`` with weight ``w`` contributes replicas
    ``(e, 0) .. (e, round(w / quantum) - 1)``.  Plain Jaccard between
    two replica sets equals the weighted Jaccard of the quantized
    weights: both numerator and denominator count replicas, and replica
    ``(e, i)`` is shared iff ``i < min`` of the two quantized counts.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum}")
    _check_weights(weights)
    replicas = set()
    for element, weight in weights.items():
        count = round(weight / quantum)
        replicas.update((element, i) for i in range(count))
    return frozenset(replicas)


def _check_weights(weights: Mapping) -> None:
    for element, weight in weights.items():
        if weight < 0:
            raise ValueError(f"negative weight {weight} for element {element!r}")


class WeightedSetSimilarityIndex:
    """Similarity range queries over weighted sets.

    A thin adapter: weight mappings are quantized to replica sets and
    indexed with the ordinary :class:`SetSimilarityIndex`; query
    results carry *exact quantized* weighted similarities (the
    quantization error relative to the raw weights is at most about
    ``quantum * n_elements / weight_mass`` per pair).

    Parameters of :meth:`build` mirror the unweighted index, plus
    ``quantum`` -- the weight resolution.
    """

    def __init__(self, inner: SetSimilarityIndex, quantum: float):
        self.inner = inner
        self.quantum = quantum

    @classmethod
    def build(
        cls,
        weighted_sets: Sequence[Mapping],
        quantum: float = 1.0,
        **build_kwargs,
    ) -> "WeightedSetSimilarityIndex":
        replica_sets = [quantize(w, quantum) for w in weighted_sets]
        inner = SetSimilarityIndex.build(replica_sets, **build_kwargs)
        return cls(inner, quantum)

    @property
    def n_sets(self) -> int:
        """Number of indexed weighted sets."""
        return self.inner.n_sets

    @property
    def plan(self):
        """The inner index's optimizer plan."""
        return self.inner.plan

    def query(
        self, weights: Mapping, sigma_low: float, sigma_high: float, **kwargs
    ) -> QueryResult:
        """Weighted-similarity range query (similarities are quantized)."""
        return self.inner.query(quantize(weights, self.quantum), sigma_low, sigma_high, **kwargs)

    def query_above(self, weights: Mapping, sigma: float) -> QueryResult:
        """Weighted sets at least ``sigma``-similar to the query."""
        return self.query(weights, sigma, 1.0)

    def query_below(self, weights: Mapping, sigma: float) -> QueryResult:
        """Weighted sets at most ``sigma``-similar to the query."""
        return self.query(weights, 0.0, sigma)

    def insert(self, weights: Mapping) -> int:
        """Index a weight mapping, returning its sid."""
        return self.inner.insert(quantize(weights, self.quantum))

    def delete(self, sid: int) -> None:
        """Remove a previously inserted weighted set."""
        self.inner.delete(sid)
