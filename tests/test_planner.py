"""Tests for the cost-based query planner and strategy dispatch."""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.core.planner import PlanEstimate
from repro.data.weblog import make_weblog_collection


@pytest.fixture(scope="module")
def planned_index():
    sets = make_weblog_collection(n_sets=500, seed=71)
    index = SetSimilarityIndex.build(
        sets, budget=100, recall_target=0.85, k=48, b=6, seed=8, sample_pairs=40_000
    )
    return sets, index


class TestEstimates:
    def test_candidate_estimate_tracks_measurement(self, planned_index):
        sets, index = planned_index
        planner = index.planner()
        low, high = 0.3, 1.0
        predicted = planner.expected_candidates(low, high)
        measured = [
            len(index.query(sets[qi], low, high).candidates)
            for qi in range(0, 500, 50)
        ]
        # Order-of-magnitude agreement: the estimate is a workload
        # average, the measurements are specific queries.
        assert predicted == pytest.approx(np.mean(measured), rel=1.0)

    def test_answer_estimate_scaling(self, planned_index):
        _, index = planned_index
        planner = index.planner()
        whole = planner.expected_answers(0.0, 1.0)
        assert whole == pytest.approx(index.n_sets - 1, rel=0.05)

    def test_wider_ranges_no_fewer_answers(self, planned_index):
        _, index = planned_index
        planner = index.planner()
        assert planner.expected_answers(0.2, 0.8) >= planner.expected_answers(0.3, 0.7)

    def test_probe_tables_counts_enclosing_filters(self, planned_index):
        _, index = planned_index
        planner = index.planner()
        cuts = index.plan.cut_points
        # A range inside [cuts[0], cuts[-1]] touches at most the
        # enclosing pair's tables.
        tables = planner.probe_tables(cuts[0], cuts[-1])
        assert 0 < tables <= index.plan.tables_used

    def test_full_range_probes_nothing(self, planned_index):
        _, index = planned_index
        planner = index.planner()
        estimate = planner.estimate(0.0, 1.0)
        assert estimate.probe_tables == 0
        assert estimate.index_cost == float("inf")
        assert not estimate.use_index

    def test_estimate_fields(self, planned_index):
        _, index = planned_index
        estimate = index.planner().estimate(0.5, 1.0)
        assert isinstance(estimate, PlanEstimate)
        assert estimate.scan_cost > 0
        assert estimate.index_cost > 0


class TestStrategyDispatch:
    def test_scan_strategy_is_exact(self, planned_index):
        sets, index = planned_index
        q = sets[0]
        scan_result = index.query(q, 0.3, 1.0, strategy="scan")
        index_result = index.query(q, 0.3, 1.0, strategy="index")
        assert index_result.answer_sids <= scan_result.answer_sids
        assert scan_result.candidates == set(range(len(sets)))

    def test_auto_picks_scan_for_full_range(self, planned_index):
        sets, index = planned_index
        result = index.query(sets[0], 0.0, 1.0, strategy="auto")
        # Full range: scan and (degenerate) index coincide; candidates
        # must be the whole collection either way.
        assert len(result.candidates) == len(sets)

    def test_auto_picks_index_for_narrow_high_range(self, planned_index):
        sets, index = planned_index
        choice = index.planner().choose(0.6, 1.0)
        assert choice == "index"
        result = index.query(sets[0], 0.6, 1.0, strategy="auto")
        assert len(result.candidates) < len(sets)

    def test_auto_cheaper_or_equal_to_both_on_average(self, planned_index):
        sets, index = planned_index
        ranges = [(0.0, 0.4), (0.5, 1.0), (0.2, 0.9), (0.7, 1.0)]
        auto_total = index_total = scan_total = 0.0
        for qi, (low, high) in enumerate(ranges):
            q = sets[qi * 7]
            auto_total += index.query(q, low, high, strategy="auto").total_time
            index_total += index.query(q, low, high, strategy="index").total_time
            scan_total += index.query(q, low, high, strategy="scan").total_time
        assert auto_total <= min(index_total, scan_total) * 1.3

    def test_invalid_strategy(self, planned_index):
        sets, index = planned_index
        with pytest.raises(ValueError):
            index.query(sets[0], 0.2, 0.8, strategy="magic")

    def test_planner_invalidated_by_updates(self, planned_index):
        sets, index = planned_index
        planner_before = index.planner()
        sid = index.insert({1, 2, 3})
        planner_after = index.planner()
        assert planner_after is not planner_before
        assert planner_after.n_sets == planner_before.n_sets + 1
        index.delete(sid)
