"""Log-bucketed HDR-style histograms: accurate tails, exact algebra.

The fixed-bucket :class:`~repro.obs.metrics.Histogram` is fine for
small-integer distributions (bucket occupancy, candidates per table)
but cannot report a credible p99 latency: its buckets are hand-picked
and its tail is one overflow bin.  :class:`HdrHistogram` instead
buckets values on a *geometric* grid -- bucket ``i`` covers
``(gamma**(i-1), gamma**i]`` with ``gamma = (1 + precision) /
(1 - precision)`` -- so every recorded value is represented with at
most ``precision`` relative error (default 1%), across the full float
range, in O(1) memory per occupied bucket (the DDSketch scheme of
Masson, Rim & Lee, VLDB 2019).

What makes it the serving-telemetry instrument is its *algebra*:

``quantile(q)``
    Any quantile, each within the documented relative error of the
    true order statistic of the recorded stream.
``merge(other)``
    Exact: bucket counts are integers, so merging two histograms
    yields literally the histogram of the concatenated streams --
    independent of merge order.  This is how per-thread shards and
    per-process workers fold into one distribution.
``delta(before)`` / ``apply_delta(delta)``
    Snapshot algebra for cross-process folding: a worker brackets a
    task with two :meth:`state` snapshots; the count-wise difference
    is exactly that task's observations and can be replayed into any
    other histogram with the same precision.

Thread model mirrors :class:`~repro.obs.metrics.Counter`: observations
go to a per-thread shard (a private dict; no hot-path locking) and
every read aggregates the shards, so concurrent recording from a
worker pool is exact.

Zero and negative values land in a dedicated zero bucket (latencies
and counts are non-negative; a clock that reads 0.0 must not vanish).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

#: Default relative-error bound (1%): quantiles are within +-1% of the
#: true order statistic.
DEFAULT_PRECISION = 0.01

#: Values below this are indistinguishable from zero for bucketing
#: purposes (a femtosecond latency is a clock artifact, not a signal).
MIN_TRACKABLE = 1e-12


class _HdrShard:
    """One thread's private observation cell of a sharded histogram."""

    __slots__ = ("counts", "zero_count", "count", "total", "min", "max")

    def __init__(self):
        self.counts: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None


class HdrHistogram:
    """A mergeable log-bucketed histogram with bounded relative error.

    Parameters
    ----------
    name:
        Instrument name (registry key; exported metric name).
    precision:
        Relative-error bound in (0, 1).  Buckets grow geometrically by
        ``gamma = (1 + precision) / (1 - precision)``; the midpoint
        representative of a bucket is then within ``precision`` of any
        value the bucket holds.  1% precision costs ~920 buckets per
        decade-spanning workload -- a few KiB, allocated sparsely.
    """

    __slots__ = ("name", "precision", "gamma", "_log_gamma", "_rep_factor",
                 "_lock", "_shards", "_local")

    def __init__(self, name: str, precision: float = DEFAULT_PRECISION):
        if not 0.0 < precision < 1.0:
            raise ValueError(f"precision must be in (0, 1), got {precision}")
        self.name = name
        self.precision = precision
        self.gamma = (1.0 + precision) / (1.0 - precision)
        self._log_gamma = math.log(self.gamma)
        # Representative of bucket i: 2*gamma**i / (gamma + 1), the
        # harmonic midpoint -- at most `precision` relative error from
        # every value in (gamma**(i-1), gamma**i].
        self._rep_factor = 2.0 / (self.gamma + 1.0)
        self._lock = threading.Lock()
        self._shards: list[_HdrShard] = []
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    def shard(self) -> _HdrShard:
        """The calling thread's private cell (created on first use)."""
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _HdrShard()
            with self._lock:
                self._shards.append(cell)
            self._local.cell = cell
        return cell

    def bucket_index(self, value: float) -> int:
        """The geometric bucket holding ``value`` (> MIN_TRACKABLE)."""
        return math.ceil(math.log(value) / self._log_gamma)

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe, shard-local)."""
        cell = self.shard()
        if value > MIN_TRACKABLE:
            i = math.ceil(math.log(value) / self._log_gamma)
            counts = cell.counts
            counts[i] = counts.get(i, 0) + 1
        else:
            cell.zero_count += 1
        cell.count += 1
        cell.total += value
        if cell.min is None or value < cell.min:
            cell.min = value
        if cell.max is None or value > cell.max:
            cell.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # -- aggregation -------------------------------------------------------

    def _aggregate(self) -> _HdrShard:
        """Merge every thread's shard into one cell (read-side only)."""
        agg = _HdrShard()
        with self._lock:
            shards = list(self._shards)
        for cell in shards:
            for i, n in cell.counts.items():
                agg.counts[i] = agg.counts.get(i, 0) + n
            agg.zero_count += cell.zero_count
            agg.count += cell.count
            agg.total += cell.total
            if cell.min is not None and (agg.min is None or cell.min < agg.min):
                agg.min = cell.min
            if cell.max is not None and (agg.max is None or cell.max > agg.max):
                agg.max = cell.max
        return agg

    @property
    def count(self) -> int:
        return self._aggregate().count

    @property
    def total(self) -> float:
        return self._aggregate().total

    @property
    def min(self) -> float | None:
        return self._aggregate().min

    @property
    def max(self) -> float | None:
        return self._aggregate().max

    @property
    def mean(self) -> float:
        agg = self._aggregate()
        return agg.total / agg.count if agg.count else 0.0

    def representative(self, bucket: int) -> float:
        """The value reported for a bucket (its harmonic midpoint)."""
        return self._rep_factor * self.gamma ** bucket

    def quantile(self, q: float) -> float:
        """The q-quantile of the recorded stream, within ``precision``.

        Uses the lower order statistic at rank ``ceil(q * count)``
        (rank 1 for q=0), matching ``sorted(values)[max(0,
        ceil(q*n)-1)]`` -- the convention the property tests pin.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        agg = self._aggregate()
        if agg.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * agg.count))
        if rank <= agg.zero_count:
            return 0.0
        seen = agg.zero_count
        for i in sorted(agg.counts):
            seen += agg.counts[i]
            if seen >= rank:
                return self.representative(i)
        # Unreachable unless counts were mutated mid-read; fall back to
        # the max bucket's representative.
        return self.representative(max(agg.counts))

    def quantiles(self, qs: Iterable[float]) -> dict[float, float]:
        """Several quantiles in one aggregation pass."""
        return {q: self.quantile(q) for q in qs}

    # -- snapshot / merge algebra -----------------------------------------

    def state(self) -> dict[str, Any]:
        """JSON-safe full state: the fold/persist primitive.

        Bucket keys are serialized as strings so the state survives a
        JSON round-trip (JSON objects cannot have int keys).
        """
        agg = self._aggregate()
        return {
            "precision": self.precision,
            "counts": {str(i): n for i, n in agg.counts.items()},
            "zero_count": agg.zero_count,
            "count": agg.count,
            "sum": agg.total,
            "min": agg.min,
            "max": agg.max,
        }

    def delta(self, before: dict[str, Any]) -> dict[str, Any]:
        """Count-wise difference of the current state against ``before``.

        ``before`` must be an earlier :meth:`state` of this histogram
        (or an equal-precision one); the result is itself a valid state
        describing exactly the observations recorded in between, and
        can be folded elsewhere with :meth:`apply_delta`.
        """
        after = self.state()
        return state_delta(before, after)

    def apply_delta(self, delta: dict[str, Any]) -> None:
        """Fold an externally measured state/delta into this histogram.

        Counts land in the calling thread's shard (the same discipline
        as :meth:`~repro.obs.metrics.Counter` delta folding), so
        concurrent folds from several merge points stay exact.
        """
        if not math.isclose(delta.get("precision", self.precision),
                            self.precision, rel_tol=1e-9):
            raise ValueError(
                f"cannot fold precision={delta.get('precision')} state "
                f"into precision={self.precision} histogram {self.name!r}"
            )
        if state_is_empty(delta):
            # An empty delta's min/max envelope (inherited from the
            # `after` endpoint) describes zero observations; folding it
            # would corrupt this histogram's extremes.
            return
        cell = self.shard()
        for key, n in delta.get("counts", {}).items():
            if n:
                i = int(key)
                cell.counts[i] = cell.counts.get(i, 0) + n
        cell.zero_count += delta.get("zero_count", 0)
        cell.count += delta.get("count", 0)
        cell.total += delta.get("sum", 0.0)
        dmin, dmax = delta.get("min"), delta.get("max")
        if dmin is not None and (cell.min is None or dmin < cell.min):
            cell.min = dmin
        if dmax is not None and (cell.max is None or dmax > cell.max):
            cell.max = dmax

    def merge(self, other: "HdrHistogram") -> "HdrHistogram":
        """Fold ``other``'s observations into self (exact); returns self."""
        self.apply_delta(other.state())
        return self

    def _reset(self) -> None:
        """Zero every shard in place (cached references stay valid)."""
        with self._lock:
            for cell in self._shards:
                cell.counts = {}
                cell.zero_count = 0
                cell.count = 0
                cell.total = 0.0
                cell.min = None
                cell.max = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the metrics-snapshot representation)."""
        agg = self._aggregate()
        summary: dict[str, Any] = {
            "count": agg.count,
            "sum": agg.total,
            "min": agg.min,
            "max": agg.max,
            "mean": agg.total / agg.count if agg.count else 0.0,
            "precision": self.precision,
        }
        if agg.count:
            for label, q in (("p50", 0.50), ("p90", 0.90),
                             ("p99", 0.99), ("p999", 0.999)):
                summary[label] = self.quantile(q)
        return summary

    def __repr__(self) -> str:
        agg = self._aggregate()
        return (
            f"HdrHistogram({self.name!r}, precision={self.precision}, "
            f"count={agg.count})"
        )


def state_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Count-wise ``after - before`` of two histogram states.

    Both must come from equal-precision histograms, with ``before``
    taken earlier on the same stream (all count deltas non-negative;
    a shrinking count means the histogram was reset in between, which
    the caller must treat as a new epoch).  min/max of the delta are
    taken from ``after``: the true min/max of just the in-between
    observations is not recoverable from endpoint snapshots, and for
    fold purposes the conservative envelope is correct.
    """
    counts = dict(after.get("counts", {}))
    for key, n in before.get("counts", {}).items():
        left = counts.get(key, 0) - n
        if left:
            counts[key] = left
        else:
            counts.pop(key, None)
    return {
        "precision": after.get("precision"),
        "counts": counts,
        "zero_count": after.get("zero_count", 0) - before.get("zero_count", 0),
        "count": after.get("count", 0) - before.get("count", 0),
        "sum": after.get("sum", 0.0) - before.get("sum", 0.0),
        "min": after.get("min"),
        "max": after.get("max"),
    }


def state_is_empty(state: dict[str, Any]) -> bool:
    """Whether a state/delta carries no observations at all."""
    return not state.get("count") and not state.get("counts") \
        and not state.get("zero_count")
