"""Tests for the Chernoff-bound estimator analysis."""

import math

import numpy as np
import pytest

from repro.core.estimator import (
    chernoff_error_bound,
    estimate_interval,
    estimator_standard_error,
    required_signature_length,
)
from repro.core.minhash import MinHasher
from repro.core.similarity import jaccard


class TestChernoffBound:
    def test_decreases_in_k(self):
        bounds = [chernoff_error_bound(k, 0.1) for k in (10, 100, 1000)]
        assert bounds == sorted(bounds, reverse=True)

    def test_decreases_in_epsilon(self):
        assert chernoff_error_bound(100, 0.2) < chernoff_error_bound(100, 0.05)

    def test_capped_at_one(self):
        assert chernoff_error_bound(1, 0.001) == 1.0

    def test_known_value(self):
        assert chernoff_error_bound(100, 0.1) == pytest.approx(2 * math.exp(-2.0))

    def test_invalid(self):
        with pytest.raises(ValueError):
            chernoff_error_bound(0, 0.1)
        with pytest.raises(ValueError):
            chernoff_error_bound(10, 0.0)


class TestRequiredLength:
    def test_inverts_bound(self):
        k = required_signature_length(0.1, 0.05)
        assert chernoff_error_bound(k, 0.1) <= 0.05
        assert chernoff_error_bound(k - 1, 0.1) > 0.05

    def test_paper_k100_regime(self):
        """k = 100 guarantees ~0.14 accuracy at 95% confidence."""
        assert required_signature_length(0.14, 0.05) <= 100

    def test_tighter_needs_more(self):
        assert required_signature_length(0.01, 0.05) > required_signature_length(0.1, 0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            required_signature_length(0.0, 0.05)
        with pytest.raises(ValueError):
            required_signature_length(0.1, 1.0)


class TestInterval:
    def test_contains_estimate(self):
        lo, hi = estimate_interval(0.5, 100)
        assert lo < 0.5 < hi

    def test_clipped(self):
        lo, hi = estimate_interval(0.01, 10)
        assert lo == 0.0
        lo, hi = estimate_interval(0.99, 10)
        assert hi == 1.0

    def test_narrows_with_k(self):
        lo1, hi1 = estimate_interval(0.5, 50)
        lo2, hi2 = estimate_interval(0.5, 5000)
        assert hi2 - lo2 < hi1 - lo1

    def test_coverage_empirically(self):
        """The 95% interval covers the truth in ~>= 95% of trials."""
        a = frozenset(range(40))
        b = frozenset(range(20, 60))
        true = jaccard(a, b)
        covered = 0
        trials = 60
        for seed in range(trials):
            hasher = MinHasher(k=100, seed=seed)
            est = hasher.estimate_similarity(hasher.signature(a), hasher.signature(b))
            lo, hi = estimate_interval(est, 100, delta=0.05)
            covered += lo <= true <= hi
        assert covered / trials >= 0.9

    def test_invalid(self):
        with pytest.raises(ValueError):
            estimate_interval(1.5, 10)
        with pytest.raises(ValueError):
            estimate_interval(0.5, 0)
        with pytest.raises(ValueError):
            estimate_interval(0.5, 10, delta=0.0)


class TestStandardError:
    def test_maximal_at_half(self):
        assert estimator_standard_error(0.5, 100) > estimator_standard_error(0.1, 100)

    def test_zero_at_endpoints(self):
        assert estimator_standard_error(0.0, 50) == 0.0
        assert estimator_standard_error(1.0, 50) == 0.0

    def test_matches_empirical_spread(self):
        a = frozenset(range(30))
        b = frozenset(range(15, 45))
        true = jaccard(a, b)
        estimates = []
        for seed in range(40):
            hasher = MinHasher(k=64, seed=seed)
            estimates.append(
                hasher.estimate_similarity(hasher.signature(a), hasher.signature(b))
            )
        empirical = float(np.std(estimates))
        predicted = estimator_standard_error(true, 64)
        assert empirical == pytest.approx(predicted, rel=0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            estimator_standard_error(-0.1, 10)
        with pytest.raises(ValueError):
            estimator_standard_error(0.5, 0)
