"""Cross-cutting property tests on random plans and distributions.

These lock in invariants the analytic machinery must satisfy for *any*
input, not just the fixtures used elsewhere: capture probabilities are
probabilities, plan evaluation respects its definitions, and quantile /
cdf are mutual inverses on arbitrary histograms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import SimilarityDistribution
from repro.core.optimizer import (
    DFI,
    SFI,
    CaptureModel,
    PlannedFilter,
    evaluate_ranges,
    greedy_allocate,
    place_filters,
)

histograms = st.lists(
    st.floats(0.0, 1000.0, allow_nan=False), min_size=4, max_size=60
).filter(lambda m: sum(m) > 0)

cut_sets = st.lists(
    st.floats(0.05, 0.95), min_size=1, max_size=5, unique=True
).map(sorted)


def _random_plan(cuts, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    delta = float(rng.uniform(0.1, 0.9))
    filters = place_filters(list(cuts), delta)
    for f in filters:
        f.n_tables = int(rng.integers(1, 40))
    return filters


class TestCaptureModelProperties:
    @given(cut_sets, st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.integers(0, 5))
    @settings(max_examples=120, deadline=None)
    def test_capture_is_probability(self, cuts, a, b, seed):
        lo, hi = sorted((a, b))
        filters = _random_plan(cuts, seed)
        model = CaptureModel(list(cuts), filters, b=6)
        grid = np.linspace(0.0, 1.0, 31)
        p = model.capture(lo, hi, grid)
        assert np.all(p >= -1e-12)
        assert np.all(p <= 1.0 + 1e-12)

    @given(cut_sets, st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_full_range_capture_is_one(self, cuts, seed):
        filters = _random_plan(cuts, seed)
        model = CaptureModel(list(cuts), filters, b=6)
        grid = np.linspace(0.0, 1.0, 11)
        assert np.all(model.capture(0.0, 1.0, grid) == 1.0)

    @given(cut_sets)
    @settings(max_examples=60, deadline=None)
    def test_enclosing_brackets_range(self, cuts):
        model = CaptureModel(list(cuts), [], b=6)
        lo, hi = 0.3, 0.62
        enc_lo, enc_up = model.enclosing(lo, hi)
        if enc_lo is not None:
            assert enc_lo <= lo
        if enc_up is not None:
            assert enc_up >= hi

    def test_sfi_capture_between_individual_probabilities(self):
        low = PlannedFilter(0.3, SFI, n_tables=10)
        high = PlannedFilter(0.7, SFI, n_tables=10)
        model = CaptureModel([0.3, 0.7], [low, high], b=6)
        grid = np.linspace(0, 1, 21)
        capture = model.capture(0.4, 0.6, grid)
        # Sim(lo) \ Sim(up): never more than Sim(lo) alone.
        assert np.all(capture <= low.collision_probability(grid, 6) + 1e-12)


class TestEvaluateRangesProperties:
    @given(histograms, cut_sets, st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_metrics_are_probabilities(self, mass, cuts, seed):
        dist = SimilarityDistribution(np.array(mass), 100)
        filters = _random_plan(cuts, seed)
        stats = evaluate_ranges(list(cuts), filters, dist, b=6)
        for s in stats:
            assert -1e-9 <= s.recall <= 1.0 + 1e-9
            assert -1e-9 <= s.precision <= 1.0 + 1e-9
            assert s.expected_candidates >= -1e-9
            assert s.expected_answer > 0  # empty-answer ranges are skipped

    @given(histograms)
    @settings(max_examples=40, deadline=None)
    def test_empty_plan_recall_one(self, mass):
        dist = SimilarityDistribution(np.array(mass), 100)
        stats = evaluate_ranges([], [], dist, b=6)
        assert all(s.recall == pytest.approx(1.0) for s in stats)

    @given(histograms, cut_sets)
    @settings(max_examples=40, deadline=None)
    def test_greedy_allocation_feasible(self, mass, cuts):
        dist = SimilarityDistribution(np.array(mass), 100)
        filters = place_filters(list(cuts), 0.5)
        budget = 30
        used = greedy_allocate(filters, budget, dist, b=6)
        assert used <= budget
        assert used == sum(f.n_tables for f in filters)
        if budget >= len(filters):
            assert all(f.n_tables >= 1 for f in filters)

    @given(histograms, cut_sets, st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_greedy_respects_per_filter_cap(self, mass, cuts, cap):
        dist = SimilarityDistribution(np.array(mass), 100)
        filters = place_filters(list(cuts), 0.5)
        greedy_allocate(filters, 60, dist, b=6, max_per_filter=cap)
        assert all(f.n_tables <= cap for f in filters)


class TestDistributionDuality:
    @given(histograms, st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_cdf_inverse(self, mass, q):
        dist = SimilarityDistribution(np.array(mass), 100)
        s = dist.quantile(q)
        assert dist.mass_between(0.0, s) == pytest.approx(
            q * dist.total_mass, abs=1e-6 * max(1.0, dist.total_mass)
        )

    @given(histograms, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_mass_additivity(self, mass, a, b):
        dist = SimilarityDistribution(np.array(mass), 100)
        lo, hi = sorted((a, b))
        left = dist.mass_between(0.0, lo)
        mid = dist.mass_between(lo, hi)
        right = dist.mass_between(hi, 1.0)
        assert left + mid + right == pytest.approx(dist.total_mass, rel=1e-9)

    @given(histograms, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_equidepth_points_sorted_in_range(self, mass, k):
        dist = SimilarityDistribution(np.array(mass), 100)
        points = dist.equidepth_points(k)
        assert points == sorted(points)
        assert all(0.0 <= p <= 1.0 for p in points)


class TestPlacementProperties:
    @given(cut_sets, st.floats(0.05, 0.95))
    @settings(max_examples=80)
    def test_exactly_one_pivot(self, cuts, delta):
        filters = place_filters(list(cuts), delta)
        dual = {
            point
            for point in cuts
            if {f.kind for f in filters if f.point == point} == {SFI, DFI}
        }
        assert len(dual) == 1

    @given(cut_sets, st.floats(0.05, 0.95))
    @settings(max_examples=80)
    def test_kinds_ordered_around_delta(self, cuts, delta):
        """No SFI strictly below a DFI point (except at the pivot)."""
        filters = place_filters(list(cuts), delta)
        sfi_points = [f.point for f in filters if f.kind == SFI]
        dfi_points = [f.point for f in filters if f.kind == DFI]
        # Every pure-DFI point lies below every pure-SFI point (the
        # pivot shares a point and is excluded from both sides).
        pure_dfi = [p for p in dfi_points if p not in sfi_points]
        pure_sfi = [p for p in sfi_points if p not in dfi_points]
        if pure_dfi and pure_sfi:
            assert max(pure_dfi) < min(pure_sfi)
