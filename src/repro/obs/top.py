"""The ``repro top`` dashboard: live query telemetry in a terminal.

Renders the operator's four questions -- how fast (QPS, latency
quantiles), how selective (candidate -> verified funnel), how much I/O
(pages read, buffer-pool hit rate), and what's slow (the slow-query
log) -- from a stream of :mod:`repro.obs.events` records.

The input is a JSONL event export (``EventLog.export_jsonl``), read
either once (``repro top --once``, the scriptable/CI form) or in
follow mode, where the file is re-read every refresh interval so a
harness appending events drives a live view.  All statistics are
computed from the event sample itself: quantiles here are *exact* over
the captured events (the HDR histograms backing the Prometheus export
summarize the full population; at sample=1.0 the two agree within the
histograms' documented precision).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: Quantile columns of the latency table.
QUANTILES = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999),
)


def _quantile(values: list[float], q: float) -> float:
    """Lower order statistic at rank ``ceil(q*n)`` (the repo-wide
    quantile convention; see :meth:`repro.obs.hdr.HdrHistogram.quantile`)."""
    if not values:
        return 0.0
    rank = max(1, math.ceil(q * len(values)))
    return sorted(values)[rank - 1]


def summarize(
    records: Iterable[dict[str, Any]], window_s: float | None = None
) -> dict[str, Any]:
    """Aggregate event records into the dashboard's panel values.

    ``window_s`` keeps only events within that many seconds of the
    newest event (a sliding window for follow mode); None aggregates
    everything.  Returns a JSON-safe dict; see :func:`render` for the
    presentation.
    """
    events = [e for e in records if e.get("kind") in ("query", "query_batch")]
    if window_s is not None and events:
        newest = max(e["ts"] for e in events)
        events = [e for e in events if e["ts"] >= newest - window_s]
    if not events:
        return {"n_events": 0}

    n_queries = sum(e["n_queries"] for e in events)
    span = max(e["ts"] for e in events) - min(e["ts"] for e in events)
    latencies = [e["latency_ms"] for e in events]
    sim_times = [e["sim_time"] for e in events]
    n_candidates = sum(e["n_candidates"] for e in events)
    n_verified = sum(e["n_verified"] for e in events)
    pages_read = sum(e["pages_read"] for e in events)
    cache_hits = sum(e["cache_hits"] for e in events)
    lookups = pages_read + cache_hits
    phases: dict[str, list[float]] = {}
    for e in events:
        for phase, ms in (e.get("timings") or {}).items():
            phases.setdefault(phase, []).append(ms)
    backends: dict[str, int] = {}
    for e in events:
        backends[e["backend"]] = backends.get(e["backend"], 0) + 1
    slow = sorted(
        (e for e in events if e.get("slow")),
        key=lambda e: e["latency_ms"], reverse=True,
    )
    return {
        "n_events": len(events),
        "n_queries": n_queries,
        "span_s": span,
        "qps": n_queries / span if span > 0 else float(n_queries),
        "latency_ms": {
            label: _quantile(latencies, q) for label, q in QUANTILES
        },
        "sim_time": {
            label: _quantile(sim_times, q) for label, q in QUANTILES
        },
        "phases_ms": {
            phase: {
                "mean": sum(values) / len(values),
                "p99": _quantile(values, 0.99),
            }
            for phase, values in sorted(phases.items())
        },
        "funnel": {
            "candidates": n_candidates,
            "verified": n_verified,
            "precision": n_verified / n_candidates if n_candidates else 0.0,
        },
        "io": {
            "pages_read": pages_read,
            "cache_hits": cache_hits,
            "hit_ratio": cache_hits / lookups if lookups else 0.0,
        },
        "backends": backends,
        "n_slow": len(slow),
        "slowest": [
            {
                "latency_ms": e["latency_ms"],
                "kind": e["kind"],
                "backend": e["backend"],
                "n_queries": e["n_queries"],
                "range": [e["sigma_low"], e["sigma_high"]],
            }
            for e in slow[:5]
        ],
    }


def render(summary: dict[str, Any], source: str = "") -> str:
    """The dashboard as fixed-width terminal text."""
    lines: list[str] = []
    title = "repro top" + (f" -- {source}" if source else "")
    lines.append(title)
    lines.append("=" * max(46, len(title)))
    if not summary.get("n_events"):
        lines.append("(no query events)")
        return "\n".join(lines)
    lines.append(
        f"events {summary['n_events']}  queries {summary['n_queries']}  "
        f"span {summary['span_s']:.1f}s  QPS {summary['qps']:.1f}"
    )
    lat = summary["latency_ms"]
    sim = summary["sim_time"]
    lines.append("")
    lines.append(f"{'latency':<12}{'p50':>10}{'p90':>10}{'p99':>10}{'p999':>10}")
    lines.append(
        f"{'wall ms':<12}"
        + "".join(f"{lat[k]:>10.2f}" for k, _ in QUANTILES)
    )
    lines.append(
        f"{'simulated':<12}"
        + "".join(f"{sim[k]:>10.1f}" for k, _ in QUANTILES)
    )
    if summary["phases_ms"]:
        lines.append("")
        lines.append(f"{'phase':<12}{'mean ms':>10}{'p99 ms':>10}")
        for phase, stats in summary["phases_ms"].items():
            lines.append(
                f"{phase:<12}{stats['mean']:>10.2f}{stats['p99']:>10.2f}"
            )
    funnel = summary["funnel"]
    io = summary["io"]
    lines.append("")
    lines.append(
        f"funnel: {funnel['candidates']} candidates -> "
        f"{funnel['verified']} verified "
        f"(precision {funnel['precision']:.3f})"
    )
    lines.append(
        f"io: {io['pages_read']} pages read, {io['cache_hits']} pool hits "
        f"(hit ratio {io['hit_ratio']:.3f})"
    )
    backends = ", ".join(
        f"{name}={count}" for name, count in sorted(summary["backends"].items())
    )
    lines.append(f"backends: {backends}")
    if summary["n_slow"]:
        lines.append("")
        lines.append(f"slow queries ({summary['n_slow']} captured):")
        for e in summary["slowest"]:
            lines.append(
                f"  {e['latency_ms']:>9.1f} ms  {e['kind']:<12} "
                f"backend={e['backend']} n={e['n_queries']} "
                f"range=[{e['range'][0]:.2f}, {e['range'][1]:.2f}]"
            )
    return "\n".join(lines)
