"""Tests for drift detection and index rebuilding."""

import numpy as np
import pytest

from repro.core.distribution import SimilarityDistribution
from repro.core.index import SetSimilarityIndex
from repro.core.maintenance import (
    MaintenanceAdvisor,
    distribution_drift,
    rebuild,
)
from repro.data.generators import planted_clusters, uniform_random_sets


class TestDistributionDrift:
    def test_identical_is_zero(self):
        dist = SimilarityDistribution(np.arange(1.0, 11.0), 10)
        assert distribution_drift(dist, dist) == 0.0

    def test_disjoint_is_one(self):
        a = SimilarityDistribution(np.array([10.0, 0.0]), 5)
        b = SimilarityDistribution(np.array([0.0, 10.0]), 5)
        assert distribution_drift(a, b) == pytest.approx(1.0)

    def test_scale_invariant(self):
        a = SimilarityDistribution(np.array([1.0, 3.0]), 3)
        b = SimilarityDistribution(np.array([10.0, 30.0]), 30)
        assert distribution_drift(a, b) == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = SimilarityDistribution(rng.random(20), 10)
        b = SimilarityDistribution(rng.random(20), 10)
        assert distribution_drift(a, b) == pytest.approx(distribution_drift(b, a))

    def test_empty_cases(self):
        empty = SimilarityDistribution(np.zeros(5), 1)
        full = SimilarityDistribution(np.ones(5), 5)
        assert distribution_drift(empty, empty) == 0.0
        assert distribution_drift(empty, full) == 1.0

    def test_resolution_mismatch(self):
        a = SimilarityDistribution(np.ones(5), 5)
        b = SimilarityDistribution(np.ones(10), 5)
        with pytest.raises(ValueError):
            distribution_drift(a, b)


class TestAdvisor:
    @pytest.fixture
    def fresh_index(self):
        sets = planted_clusters(6, 6, base_size=25, universe=2000, seed=31)
        return SetSimilarityIndex.build(
            sets, budget=30, recall_target=0.8, k=24, seed=5
        )

    def test_no_churn_no_rebuild(self, fresh_index):
        advisor = MaintenanceAdvisor(fresh_index)
        report = advisor.check()
        assert report.churn_fraction == 0.0
        assert not report.should_rebuild

    def test_churn_counts_inserts_and_deletes(self, fresh_index):
        advisor = MaintenanceAdvisor(fresh_index)
        fresh_index.insert({1, 2, 3})
        fresh_index.delete(0)
        assert advisor.churn_fraction == pytest.approx(2 / 36)

    def test_high_churn_low_drift_no_rebuild(self, fresh_index):
        """Inserting more of the same does not warrant a rebuild."""
        advisor = MaintenanceAdvisor(fresh_index, churn_threshold=0.1)
        more = planted_clusters(2, 6, base_size=25, universe=2000, seed=32)
        for s in more:
            fresh_index.insert(s)
        report = advisor.check(seed=1)
        assert report.churn_fraction > 0.1
        assert not report.should_rebuild
        assert "stable" in report.reason

    def test_drifted_workload_triggers_rebuild(self, fresh_index):
        """Flooding a clustered collection with uniform-random sets
        reshapes D_S and should trip the advisor."""
        advisor = MaintenanceAdvisor(
            fresh_index, churn_threshold=0.2, drift_threshold=0.05
        )
        flood = uniform_random_sets(60, universe=50_000, set_size=25, seed=33)
        for s in flood:
            fresh_index.insert(s)
        report = advisor.check(seed=2)
        assert report.should_rebuild
        assert report.drift >= 0.05

    def test_invalid_thresholds(self, fresh_index):
        with pytest.raises(ValueError):
            MaintenanceAdvisor(fresh_index, churn_threshold=0.0)


class TestRebuild:
    def test_rebuild_reflects_current_contents(self):
        sets = planted_clusters(4, 6, base_size=25, universe=2000, seed=41)
        index = SetSimilarityIndex.build(sets, budget=30, recall_target=0.8, k=24, seed=6)
        added = frozenset(range(5000, 5030))
        index.insert(added)
        index.delete(0)
        fresh = rebuild(index, seed=7)
        assert fresh.n_sets == index.n_sets
        # The deleted set is gone; sids are renumbered densely.
        found = fresh.query_above(added, 0.95)
        assert len(found.answers) == 1

    def test_rebuild_defaults_to_old_budget(self):
        sets = planted_clusters(4, 6, base_size=25, universe=2000, seed=42)
        index = SetSimilarityIndex.build(sets, budget=30, recall_target=0.8, k=24, seed=6)
        fresh = rebuild(index, seed=8)
        assert fresh.plan.tables_used <= max(1, index.plan.tables_used)

    def test_rebuild_retunes_for_drifted_data(self):
        """After a drift, the rebuilt plan differs from the stale one."""
        sets = planted_clusters(4, 6, base_size=25, universe=2000, seed=43)
        index = SetSimilarityIndex.build(sets, budget=40, recall_target=0.8, k=24, seed=9)
        flood = uniform_random_sets(80, universe=50_000, set_size=25, seed=44)
        for s in flood:
            index.insert(s)
        fresh = rebuild(index, budget=40, recall_target=0.8, seed=9)
        assert fresh.plan.cut_points != index.plan.cut_points
