"""Tests for index save/load."""

import pytest

from repro.core.index import SetSimilarityIndex
from repro.core.persistence import (
    FORMAT_VERSION,
    MAGIC,
    PersistenceError,
    load_index,
    save_index,
)


@pytest.fixture(scope="module")
def small_index(clustered_sets):
    return SetSimilarityIndex.build(
        clustered_sets[:40], budget=30, recall_target=0.8, k=24, b=6, seed=3
    )


class TestSaveLoad:
    def test_roundtrip_answers_identical(self, small_index, clustered_sets, tmp_path):
        path = tmp_path / "index.ssi"
        small_index.save(path)
        loaded = SetSimilarityIndex.load(path)
        q = clustered_sets[0]
        original = small_index.query(q, 0.3, 1.0)
        restored = loaded.query(q, 0.3, 1.0)
        assert restored.answers == original.answers
        assert restored.candidates == original.candidates

    def test_loaded_index_supports_updates(self, small_index, clustered_sets, tmp_path):
        path = tmp_path / "index.ssi"
        small_index.save(path)
        loaded = SetSimilarityIndex.load(path)
        sid = loaded.insert({1, 2, 3, 4})
        assert sid in loaded.query({1, 2, 3, 4}, 0.9, 1.0).answer_sids
        loaded.delete(sid)
        assert loaded.n_sets == small_index.n_sets

    def test_plan_preserved(self, small_index, tmp_path):
        path = tmp_path / "index.ssi"
        small_index.save(path)
        loaded = SetSimilarityIndex.load(path)
        assert loaded.plan.cut_points == small_index.plan.cut_points
        assert loaded.plan.tables_used == small_index.plan.tables_used

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"NOT-AN-INDEX" + b"\x00" * 50)
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "future.ssi"
        path.write_bytes(MAGIC + (FORMAT_VERSION + 1).to_bytes(2, "little") + b"x")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_load_type_check(self, tmp_path):
        path = tmp_path / "notindex.ssi"
        save_index({"just": "a dict"}, path)
        with pytest.raises(TypeError):
            SetSimilarityIndex.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.ssi")
