"""B-tree mapping set identifiers to heap record ids.

Query answering in the paper "is a two step process.  First the set of
candidate set identifiers is fetched ... and then the corresponding
sets are retrieved from disk, using a conventional data structure such
as a B-tree supporting queries on set identifier."  This module is that
conventional structure: a classic min-degree B-tree (CLRS style) whose
every node occupies one page, so a point lookup costs ``height`` random
reads.

The tree supports insert, search, delete and in-order range scans; it
is deliberately general (arbitrary orderable keys) so it can double as
the dictionary for other experiments.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.pager import PageManager


class _Node:
    __slots__ = ("keys", "values", "children", "page_id")

    def __init__(self, page_id: int):
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.children: list[_Node] = []
        self.page_id = page_id

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self.children


class BTree:
    """A B-tree with minimum degree ``t`` (max ``2t - 1`` keys per node).

    Parameters
    ----------
    pager:
        Page source; node visits are charged as random reads.
    min_degree:
        The classic B-tree ``t`` parameter; default 64 gives realistic
        fanout for 4 KiB pages of (sid, rid) entries.
    cache:
        Which node visits are charged to the I/O model:
        ``"none"`` charges every node on the search path;
        ``"inner"`` (default) assumes inner nodes are buffer-pool
        resident and charges leaf visits only -- standard costing for a
        warm index;
        ``"all"`` charges nothing -- the whole index is hot, which is
        the regime the paper's crossover estimate assumes (a candidate
        lookup costs just the data-page random read).
    """

    def __init__(self, pager: PageManager, min_degree: int = 64, cache: str = "inner"):
        if min_degree < 2:
            raise ValueError(f"min_degree must be >= 2, got {min_degree}")
        if cache not in ("none", "inner", "all"):
            raise ValueError(f"cache must be 'none', 'inner' or 'all', got {cache!r}")
        self.pager = pager
        self.t = min_degree
        self.cache = cache
        self._root = self._new_node()
        self._n_keys = 0

    def _new_node(self) -> _Node:
        page = self.pager.allocate(capacity=1)
        node = _Node(page.page_id)
        page.append(node)
        return node

    def _touch(self, node: _Node) -> None:
        if self.cache == "all":
            return
        if self.cache == "inner" and not node.is_leaf:
            return
        self.pager.read(node.page_id, sequential=False)

    @property
    def n_keys(self) -> int:
        """Number of keys stored in the tree."""
        return self._n_keys

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just the root)."""
        levels, node = 1, self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # -- search ---------------------------------------------------------

    def search(self, key: Any) -> Any:
        """Return the value stored under ``key``; raises KeyError if absent."""
        node = self._root
        while True:
            self._touch(node)
            i = _lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.is_leaf:
                raise KeyError(key)
            node = node.children[i]

    def __contains__(self, key: Any) -> bool:
        try:
            self.search(key)
        except KeyError:
            return False
        return True

    def range_scan(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with ``low <= key <= high`` in order."""
        yield from self._range(self._root, low, high)

    def _range(self, node: _Node, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        self._touch(node)
        i = _lower_bound(node.keys, low)
        if node.is_leaf:
            while i < len(node.keys) and node.keys[i] <= high:
                yield node.keys[i], node.values[i]
                i += 1
            return
        while True:
            yield from self._range(node.children[i], low, high)
            if i >= len(node.keys) or node.keys[i] > high:
                return
            yield node.keys[i], node.values[i]
            i += 1

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        yield from self._items(self._root)

    def _items(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._items(node.children[i])
            yield key, node.values[i]
        yield from self._items(node.children[-1])

    # -- insert ---------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert a key/value pair; an existing key's value is replaced."""
        root = self._root
        if len(root.keys) == 2 * self.t - 1:
            new_root = self._new_node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = self._new_node()
        mid_key, mid_value = child.keys[t - 1], child.values[t - 1]
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, mid_key)
        parent.values.insert(index, mid_value)
        parent.children.insert(index + 1, sibling)
        self.pager.write(parent.page_id)
        self.pager.write(child.page_id)
        self.pager.write(sibling.page_id)

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            self._touch(node)
            i = _lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                self.pager.write(node.page_id)
                return
            if node.is_leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self.pager.write(node.page_id)
                self._n_keys += 1
                return
            if len(node.children[i].keys) == 2 * self.t - 1:
                self._split_child(node, i)
                if key == node.keys[i]:
                    node.values[i] = value
                    self.pager.write(node.page_id)
                    return
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # -- delete ---------------------------------------------------------

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises KeyError if absent."""
        self._delete(self._root, key)
        if not self._root.keys and not self._root.is_leaf:
            old_root = self._root
            self._root = self._root.children[0]
            self.pager.free(old_root.page_id)
        self._n_keys -= 1

    def _delete(self, node: _Node, key: Any) -> None:
        t = self.t
        self._touch(node)
        i = _lower_bound(node.keys, key)
        found = i < len(node.keys) and node.keys[i] == key
        if node.is_leaf:
            if not found:
                raise KeyError(key)
            node.keys.pop(i)
            node.values.pop(i)
            self.pager.write(node.page_id)
            return
        if found:
            left, right = node.children[i], node.children[i + 1]
            if len(left.keys) >= t:
                pred_key, pred_value = self._max_entry(left)
                node.keys[i], node.values[i] = pred_key, pred_value
                self.pager.write(node.page_id)
                self._delete(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_value = self._min_entry(right)
                node.keys[i], node.values[i] = succ_key, succ_value
                self.pager.write(node.page_id)
                self._delete(right, succ_key)
            else:
                self._merge_children(node, i)
                self._delete(left, key)
            return
        child = node.children[i]
        if len(child.keys) < t:
            child = self._fill_child(node, i)
        self._delete(child, key)

    def _max_entry(self, node: _Node) -> tuple[Any, Any]:
        while not node.is_leaf:
            self._touch(node)
            node = node.children[-1]
        self._touch(node)
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> tuple[Any, Any]:
        while not node.is_leaf:
            self._touch(node)
            node = node.children[0]
        self._touch(node)
        return node.keys[0], node.values[0]

    def _merge_children(self, node: _Node, i: int) -> None:
        """Merge children i and i+1 around separator key i."""
        left, right = node.children[i], node.children[i + 1]
        left.keys.append(node.keys.pop(i))
        left.values.append(node.values.pop(i))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(i + 1)
        self.pager.free(right.page_id)
        self.pager.write(node.page_id)
        self.pager.write(left.page_id)

    def _fill_child(self, node: _Node, i: int) -> _Node:
        """Ensure child i has at least t keys before descending into it."""
        t = self.t
        child = node.children[i]
        if i > 0 and len(node.children[i - 1].keys) >= t:
            left = node.children[i - 1]
            child.keys.insert(0, node.keys[i - 1])
            child.values.insert(0, node.values[i - 1])
            node.keys[i - 1] = left.keys.pop()
            node.values[i - 1] = left.values.pop()
            if not left.is_leaf:
                child.children.insert(0, left.children.pop())
            self.pager.write(node.page_id)
            self.pager.write(left.page_id)
            self.pager.write(child.page_id)
            return child
        if i < len(node.children) - 1 and len(node.children[i + 1].keys) >= t:
            right = node.children[i + 1]
            child.keys.append(node.keys[i])
            child.values.append(node.values[i])
            node.keys[i] = right.keys.pop(0)
            node.values[i] = right.values.pop(0)
            if not right.is_leaf:
                child.children.append(right.children.pop(0))
            self.pager.write(node.page_id)
            self.pager.write(right.page_id)
            self.pager.write(child.page_id)
            return child
        if i < len(node.children) - 1:
            self._merge_children(node, i)
            return node.children[i]
        self._merge_children(node, i - 1)
        return node.children[i - 1]


def _lower_bound(keys: list[Any], key: Any) -> int:
    """Index of the first element >= key (binary search)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
