"""Load generator for the coalescing query server.

Drives ``repro serve`` with many concurrent client connections in a
closed loop (each connection keeps ``pipeline`` requests in flight and
sends the next as soon as an answer lands), measuring what the server
actually delivers: sustained QPS, client-observed latency percentiles,
the micro-batch sizes the coalescer discovered, and typed error
counts.  The answers come back attached to their query index, so a
harness can check them bit-for-bit against a direct ``query_batch`` on
the same snapshot -- the serving equivalence gate.

Used by ``repro loadgen`` (CLI), ``benchmarks/bench_serve.py`` and the
``serve-smoke`` CI job.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve import protocol


@dataclass
class LoadgenResult:
    """Everything one loadgen run observed."""

    n_sent: int = 0
    n_ok: int = 0
    wall_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    #: query index -> answers ``[(sid, sim), ...]`` (last response wins;
    #: every query in the pool is answered at least once when
    #: ``total >= len(queries)``).
    answers: dict[int, list[tuple[int, float]]] = field(default_factory=dict)
    #: query index -> sorted candidate sids (``return_candidates`` runs).
    candidates: dict[int, list[int]] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    batch_sizes: list[int] = field(default_factory=list)
    queue_ms: list[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.n_ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> dict[str, Any]:
        sizes = self.batch_sizes
        return {
            "n_sent": self.n_sent,
            "n_ok": self.n_ok,
            "errors": dict(self.errors),
            "wall_seconds": round(self.wall_seconds, 4),
            "qps": round(self.qps, 1),
            "latency_ms": {
                "p50": round(self.latency_quantile(0.50), 3),
                "p90": round(self.latency_quantile(0.90), 3),
                "p99": round(self.latency_quantile(0.99), 3),
                "max": round(max(self.latencies_ms, default=0.0), 3),
            },
            "queue_ms_p50": round(
                sorted(self.queue_ms)[len(self.queue_ms) // 2], 3
            ) if self.queue_ms else 0.0,
            "batch_size": {
                "mean": round(sum(sizes) / len(sizes), 2) if sizes else 0.0,
                "max": max(sizes, default=0),
            },
        }


async def run_loadgen(
    host: str,
    port: int,
    queries: Sequence,
    low: float,
    high: float,
    *,
    connections: int = 4,
    total: int | None = None,
    duration: float | None = None,
    strategy: str = "index",
    pipeline: int = 1,
    return_candidates: bool = False,
) -> LoadgenResult:
    """Run a closed-loop burst against a live server.

    ``total`` requests are spread round-robin over ``connections``
    (default: one pass over ``queries``); with ``duration`` set, each
    connection instead cycles its share until the deadline.  Returns
    the merged :class:`LoadgenResult`.
    """
    if not queries:
        raise ValueError("loadgen needs at least one query set")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if pipeline < 1:
        raise ValueError(f"pipeline must be >= 1, got {pipeline}")
    if total is None:
        total = len(queries)
    # Deterministic work split: request i goes to connection i % C and
    # queries the pool at index i % len(queries).
    shares: list[list[tuple[int, int]]] = [[] for _ in range(connections)]
    for i in range(total):
        shares[i % connections].append((i, i % len(queries)))
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration if duration is not None else None
    result = LoadgenResult()
    t0 = time.perf_counter()
    workers = [
        _conn_worker(
            host, port, share, queries, low, high, strategy,
            pipeline, return_candidates, deadline, result,
        )
        for share in shares if share
    ]
    await asyncio.gather(*workers)
    result.wall_seconds = time.perf_counter() - t0
    return result


async def _conn_worker(
    host: str,
    port: int,
    share: list[tuple[int, int]],
    queries: Sequence,
    low: float,
    high: float,
    strategy: str,
    pipeline: int,
    return_candidates: bool,
    deadline: float | None,
    result: LoadgenResult,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    try:
        work = iter(_work_stream(share, deadline is not None))
        inflight: dict[int, tuple[int, float]] = {}  # rid -> (qidx, t0)
        done = False
        while not done or inflight:
            while not done and len(inflight) < pipeline:
                if deadline is not None and loop.time() >= deadline:
                    done = True
                    break
                item = next(work, None)
                if item is None:
                    done = True
                    break
                rid, qidx = item
                writer.write(protocol.encode_request(
                    rid, queries[qidx], low, high, strategy,
                    return_candidates=return_candidates,
                ))
                inflight[rid] = (qidx, time.perf_counter())
                result.n_sent += 1
            if not inflight:
                break
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-burst")
            _absorb(protocol.decode_response(line), inflight, result)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _work_stream(share: list[tuple[int, int]], cycle: bool):
    rid_base = 0
    while True:
        for rid, qidx in share:
            yield rid + rid_base, qidx
        if not cycle:
            return
        rid_base += 1_000_000_000


def _absorb(
    resp: dict[str, Any],
    inflight: dict[int, tuple[int, float]],
    result: LoadgenResult,
) -> None:
    rid = resp.get("id")
    qidx, sent_at = inflight.pop(rid, (None, None))
    if not resp.get("ok"):
        etype = (resp.get("error") or {}).get("type", "unknown")
        result.errors[etype] = result.errors.get(etype, 0) + 1
        return
    if sent_at is not None:
        result.latencies_ms.append((time.perf_counter() - sent_at) * 1e3)
    result.n_ok += 1
    if qidx is not None:
        result.answers[qidx] = [
            (sid, sim) for sid, sim in resp.get("answers", [])
        ]
        if "candidates" in resp:
            result.candidates[qidx] = list(resp["candidates"])
    result.batch_sizes.append(resp.get("batch_size", 1))
    result.queue_ms.append(resp.get("queue_ms", 0.0))
