"""Sequential-scan baseline (Section 6).

"Sequential scan simply scans the entire set collection and evaluates
the similarity between the query set and the sets in the database,
reporting only those sets with similarity inside the target similarity
range."  It is exact (recall 1) but pays the full collection's
sequential I/O plus a similarity evaluation per set, which is the cost
the index has to beat.

The scan shares the :class:`~repro.storage.setstore.SetStore` (and its
I/O model) with the index, so Fig. 7-style comparisons are pure
accounting: ``N_pages`` sequential reads + per-set CPU for the scan vs
probe + random-fetch + verify costs for the index.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.index import QueryResult
from repro.core.similarity import jaccard
from repro.obs import trace
from repro.storage.setstore import SetStore


class SequentialScan:
    """Exact range-query evaluation by scanning the collection."""

    def __init__(self, store: SetStore):
        self.store = store
        self.io = store.pager.io

    def query(self, elements: Iterable, sigma_low: float, sigma_high: float) -> QueryResult:
        """All stored sets with similarity in ``[sigma_low, sigma_high]``."""
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(f"invalid similarity range [{sigma_low}, {sigma_high}]")
        with trace.capture(
            "seq_scan",
            io=self.io,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            n_pages=self.store.n_pages,
        ) as root:
            before = self.io.snapshot()
            query_set = frozenset(elements)
            answers: list[tuple[int, float]] = []
            candidates: set[int] = set()
            for sid, stored in self.store.scan():
                candidates.add(sid)
                self.io.cpu(len(stored) + len(query_set))
                similarity = jaccard(stored, query_set)
                if sigma_low <= similarity <= sigma_high:
                    answers.append((sid, similarity))
            answers.sort(key=lambda pair: (-pair[1], pair[0]))
            delta = self.io.snapshot() - before
            if root is not None:
                root.set(n_candidates=len(candidates), n_verified=len(answers))
            return QueryResult(
                answers=answers,
                candidates=candidates,
                io=delta,
                io_time=self.io.io_time(delta),
                cpu_time=self.io.cpu_time(delta),
                trace=root,
            )
