"""Top-k most-similar retrieval by descending threshold probing.

The index answers *range* queries; k-nearest-neighbour retrieval (the
recommendation query of Section 1) reduces to probing successively
lower similarity thresholds until k verified answers accumulate.  The
probe thresholds walk the index's own cut points -- each step reuses
exactly the filter structures the optimizer built, so no new machinery
is needed.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.index import SetSimilarityIndex


def top_k_similar(
    index: SetSimilarityIndex,
    elements: Iterable,
    k: int,
    floor: float = 0.0,
    include_self: bool = True,
) -> list[tuple[int, float]]:
    """The (approximately) k most similar indexed sets to a query.

    Probes ``query_above`` at the index's cut points from the highest
    down, stopping once k answers (with similarity above ``floor``)
    have been verified.  Results are exact similarities in descending
    order; like every index answer they may miss filter false
    negatives, so this is "top-k of what the index can see".

    Parameters
    ----------
    floor:
        Do not descend below this similarity (also bounds the work on
        queries with fewer than k genuinely similar neighbours).
    include_self:
        When the query set is itself indexed, whether to count it.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 <= floor <= 1.0:
        raise ValueError(f"floor must be in [0, 1], got {floor}")
    query_set = frozenset(elements)
    thresholds = sorted(
        (c for c in index.plan.cut_points if c >= floor), reverse=True
    )
    thresholds.append(floor)
    found: dict[int, float] = {}
    for threshold in thresholds:
        result = index.query_above(query_set, threshold)
        for sid, similarity in result.answers:
            if similarity >= floor:
                found[sid] = similarity
        if not include_self:
            matches = [s for s in found if index.store.get(s) != query_set]
        else:
            matches = list(found)
        if len(matches) >= k:
            break
    ranked = sorted(found.items(), key=lambda pair: (-pair[1], pair[0]))
    if not include_self:
        ranked = [
            (sid, sim) for sid, sim in ranked if index.store.get(sid) != query_set
        ]
    return ranked[:k]
