"""Always-on coalescing service: sustained QPS + tail latency (BENCH-SERVE).

Measures what request coalescing buys a live server over the obvious
per-request baseline, with the equivalence gate the whole serving
stack must clear first:

* **equivalence** -- a loadgen burst through a live
  :class:`repro.serve.server.QueryServer` at workers 1/2/4 on both
  the thread and process backends; every answer (sids, exact D_S
  similarities, per-request ordering) must be **bit-identical** to a
  direct ``query_batch`` on the same snapshot.  A run that fails this
  gate exits non-zero regardless of its numbers.
* **coalescing vs. none** -- the same closed-loop client burst against
  (a) a no-coalescing server (``max_batch=1``: every request is its
  own dispatch, the classic request-per-query service) and (b) the
  coalescing server (``max_batch=64``, adaptive window), at several
  client concurrency levels.  Reported per level: sustained QPS,
  client-observed p50/p99, and the micro-batch sizes the coalescer
  discovered on its own.  In full mode the run *fails* unless
  coalescing improves both sustained QPS and p99 at >= 2 concurrency
  levels -- converting BENCH_batch.json's per-query batch savings into
  service-level wins.

Both server and clients run in one process on one event loop (the
dispatch happens on the executor's thread), so the numbers are a
single-host, GIL-shared measurement -- conservative for the coalesced
side, which does strictly less per-request protocol work per answer.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--out PATH]
        [--artifacts DIR]

Writes ``BENCH_serve.json``; with ``--artifacts DIR`` also exports the
serve run's Prometheus text + query-event JSONL (the CI upload).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

RANGE = (0.3, 0.9)

EQUIV_WORKERS = (1, 2, 4)
EQUIV_BACKENDS = ("thread", "process")

# Client concurrency levels: (connections, pipeline depth per conn).
LEVELS = ((4, 1), (16, 2), (32, 4))
SMOKE_LEVELS = ((2, 1), (8, 2))


def build_workload(n_sets: int, n_queries: int, seed: int, snapdir: Path):
    """Planted-cluster collection -> built index -> saved snapshot +
    a query pool mixing members and randoms."""
    import numpy as np

    from repro.core.index import SetSimilarityIndex
    from repro.data.generators import planted_clusters

    per_cluster = 10
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=30,
        universe=6_000,
        mutation_rate=0.2,
        seed=seed,
    )
    index = SetSimilarityIndex.build(
        sets, budget=60, recall_target=0.85, k=32, b=4, seed=seed,
        sample_pairs=4_000,
    )
    index.save_snapshot(snapdir)
    rng = np.random.default_rng(seed)
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(n_queries - 2)]
    queries.append(frozenset(int(x) for x in rng.integers(0, 6_000, size=12)))
    queries.append(frozenset())
    return index, queries


async def _run_burst(snapdir, queries, *, config, connections, pipeline,
                     total, return_candidates=False):
    from repro.serve import QueryServer, run_loadgen

    server = QueryServer(snapdir, config)
    await server.start()
    try:
        result = await run_loadgen(
            "127.0.0.1", server.port, queries, *RANGE,
            connections=connections, total=total, pipeline=pipeline,
            return_candidates=return_candidates,
        )
    finally:
        server.request_drain()
        await server.drain()
    return result, server.stats()


def equivalence_gate(snapdir, index, queries) -> list[dict]:
    """Serve at every (worker, backend) combination; compare bit-for-bit."""
    from repro.serve import ServeConfig

    direct = index.query_batch(queries, *RANGE)
    rows = []
    for backend in EQUIV_BACKENDS:
        for workers in EQUIV_WORKERS:
            config = ServeConfig(
                workers=workers, backend=backend,
                max_batch=16, max_wait_ms=2.0,
            )
            result, _ = asyncio.run(_run_burst(
                snapdir, queries, config=config,
                connections=4, pipeline=2, total=3 * len(queries),
                return_candidates=True,
            ))
            identical = not result.errors and set(result.answers) == set(
                range(len(queries))
            )
            for qidx, answers in result.answers.items():
                want = [(int(s), float(v)) for s, v in
                        direct.results[qidx].answers]
                if answers != want:
                    identical = False
            for qidx, cands in result.candidates.items():
                if cands != sorted(int(s) for s in
                                   direct.results[qidx].candidates):
                    identical = False
            rows.append({
                "backend": backend,
                "workers": workers,
                "requests": result.n_ok,
                "identical_to_query_batch": identical,
            })
            print(f"  equivalence {backend} workers={workers}: "
                  f"{'OK' if identical else 'FAILED'} ({result.n_ok} requests)")
    return rows


def measure_levels(snapdir, queries, levels, total, repeats) -> list[dict]:
    """Coalesced vs. uncoalesced serving at each concurrency level.
    Per cell, keep the best-QPS repeat (steady-state estimate)."""
    from repro.serve import ServeConfig

    rows = []
    for connections, pipeline in levels:
        cell: dict = {"connections": connections, "pipeline": pipeline,
                      "concurrency": connections * pipeline,
                      "requests": total}
        for label, config in (
            ("uncoalesced", ServeConfig(max_batch=1, max_wait_ms=0.0,
                                        adaptive=False)),
            ("coalesced", ServeConfig(max_batch=64, max_wait_ms=2.0,
                                      adaptive=True)),
        ):
            best = None
            for _ in range(repeats):
                result, stats = asyncio.run(_run_burst(
                    snapdir, queries, config=config,
                    connections=connections, pipeline=pipeline, total=total,
                ))
                if result.errors:
                    raise SystemExit(
                        f"BENCH-SERVE: {label} burst saw errors: {result.errors}"
                    )
                summary = result.summary()
                summary["mean_batch_size"] = stats["mean_batch_size"]
                summary["batches"] = stats["batches"]
                if best is None or summary["qps"] > best["qps"]:
                    best = summary
            cell[label] = best
        cell["qps_speedup"] = round(
            cell["coalesced"]["qps"] / cell["uncoalesced"]["qps"], 3
        ) if cell["uncoalesced"]["qps"] else None
        cell["p99_ratio"] = round(
            cell["coalesced"]["latency_ms"]["p99"]
            / cell["uncoalesced"]["latency_ms"]["p99"], 3
        ) if cell["uncoalesced"]["latency_ms"]["p99"] else None
        print(
            f"  c={connections}x{pipeline}: "
            f"uncoalesced {cell['uncoalesced']['qps']:.0f} qps "
            f"p99 {cell['uncoalesced']['latency_ms']['p99']:.2f}ms | "
            f"coalesced {cell['coalesced']['qps']:.0f} qps "
            f"p99 {cell['coalesced']['latency_ms']['p99']:.2f}ms "
            f"(mean batch {cell['coalesced']['mean_batch_size']:.1f}) "
            f"-> {cell['qps_speedup']}x qps, p99 x{cell['p99_ratio']}"
        )
        rows.append(cell)
    return rows


def export_artifacts(snapdir, queries, artifacts: Path) -> None:
    """One instrumented serve run whose telemetry ships as CI artifacts."""
    from repro.obs import events, export
    from repro.serve import ServeConfig

    artifacts.mkdir(parents=True, exist_ok=True)
    events.log.clear()
    asyncio.run(_run_burst(
        snapdir, queries,
        config=ServeConfig(max_batch=32, max_wait_ms=2.0),
        connections=8, pipeline=2, total=8 * len(queries),
    ))
    (artifacts / "serve_metrics.prom").write_text(export.prometheus_text())
    n = events.log.export_jsonl(artifacts / "serve_events.jsonl", which="all")
    print(f"  artifacts: serve_metrics.prom + serve_events.jsonl "
          f"({n} events) -> {artifacts}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload, no speedup gate (CI); equivalence still gates",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--artifacts", type=Path, default=None,
        help="directory for the serve run's Prometheus/event exports",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_sets, n_queries, total, repeats, levels = 200, 12, 120, 1, SMOKE_LEVELS
    else:
        n_sets, n_queries, total, repeats, levels = 2_000, 24, 1_500, 3, LEVELS

    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        snapdir = Path(tmp) / "snap"
        print(f"building workload: {n_sets} sets, {n_queries} query pool")
        index, queries = build_workload(n_sets, n_queries, seed=7,
                                        snapdir=snapdir)
        print("equivalence gate (served == direct query_batch):")
        equivalence = equivalence_gate(snapdir, index, queries)
        print("coalesced vs uncoalesced serving:")
        rows = []
        for connections, pipeline in levels:
            rows.extend(measure_levels(
                snapdir, queries, [(connections, pipeline)], total, repeats
            ))
        if args.artifacts:
            export_artifacts(snapdir, queries, args.artifacts)

    payload = {
        "bench": "serve",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "n_sets": n_sets, "query_pool": n_queries,
            "requests_per_burst": total, "range": list(RANGE),
            "repeats": repeats,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "single_core_host": (os.cpu_count() or 1) <= 1,
        },
        "note": (
            "server + clients share one process/GIL; dispatch runs on the "
            "executor thread.  Coalesced = max_batch 64, adaptive 2ms "
            "window; uncoalesced = max_batch 1 (one dispatch per request)."
        ),
        "equivalence": equivalence,
        "levels": rows,
        "wall_seconds": round(time.perf_counter() - t0, 2),
    }

    failed = [r for r in payload["equivalence"]
              if not r["identical_to_query_batch"]]
    if failed:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        raise SystemExit(f"BENCH-SERVE: equivalence gate FAILED: {failed}")
    if not args.smoke:
        improved = [
            r for r in rows
            if r["qps_speedup"] and r["qps_speedup"] > 1.0
            and r["p99_ratio"] and r["p99_ratio"] < 1.0
        ]
        if len(improved) < 2:
            args.out.write_text(json.dumps(payload, indent=2) + "\n")
            raise SystemExit(
                "BENCH-SERVE: coalescing must beat the uncoalesced baseline "
                "on QPS and p99 at >= 2 concurrency levels; got "
                f"{[(r['concurrency'], r['qps_speedup'], r['p99_ratio']) for r in rows]}"
            )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
