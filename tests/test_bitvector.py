"""Unit tests for packed bit-vector helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.bitvector import (
    WORD_BITS,
    complement,
    get_bit,
    n_words,
    pack_bits,
    set_bit,
    unpack_bits,
)

bit_arrays = st.integers(min_value=1, max_value=300).flatmap(
    lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n)
)

bit_matrices = st.tuples(
    st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=150)
).flatmap(
    lambda shape: st.lists(
        st.lists(st.integers(0, 1), min_size=shape[1], max_size=shape[1]),
        min_size=shape[0],
        max_size=shape[0],
    )
)


class TestNWords:
    def test_exact_multiple(self):
        assert n_words(128) == 2

    def test_rounds_up(self):
        assert n_words(65) == 2

    def test_zero(self):
        assert n_words(0) == 0

    def test_one(self):
        assert n_words(1) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            n_words(-1)


class TestPackUnpack:
    def test_single_bit(self):
        words = pack_bits(np.array([1], dtype=np.uint8))
        assert words.shape == (1,)
        assert int(words[0]) == 1

    def test_bit_position_convention(self):
        bits = np.zeros(70, dtype=np.uint8)
        bits[3] = 1
        bits[64] = 1
        words = pack_bits(bits)
        assert int(words[0]) == 1 << 3
        assert int(words[1]) == 1

    def test_matrix_pack(self):
        bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (2, 1)
        assert int(words[0, 0]) == 0b101
        assert int(words[1, 0]) == 0b110

    def test_unpack_matrix(self):
        bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 3), bits)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((2, 2, 2)))

    @given(bit_arrays)
    @settings(max_examples=50)
    def test_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(arr), len(bits)), arr)

    @given(bit_arrays)
    @settings(max_examples=25)
    def test_padding_is_zero(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        words = pack_bits(arr)
        total_ones = int(np.bitwise_count(words).sum())
        assert total_ones == int(arr.sum())

    @given(bit_matrices)
    @settings(max_examples=50)
    def test_matrix_roundtrip(self, rows):
        """Packing a whole matrix of rows == packing each row alone."""
        arr = np.array(rows, dtype=np.uint8)
        words = pack_bits(arr)
        assert np.array_equal(unpack_bits(words, arr.shape[1]), arr)
        for i, row in enumerate(arr):
            assert np.array_equal(words[i], pack_bits(row))

    @given(bit_arrays, bit_arrays)
    @settings(max_examples=40)
    def test_popcount_linear_under_concatenation(self, left, right):
        """popcount(pack(a ++ b)) == popcount(pack(a)) + popcount(pack(b)).

        The packed representation must not create or lose one-bits at
        the seam (padding words stay zero), which is what lets the
        batch kernels treat a packed matrix as independent rows.
        """
        a = np.array(left, dtype=np.uint8)
        b = np.array(right, dtype=np.uint8)
        joined = pack_bits(np.concatenate([a, b]))
        ones = int(np.bitwise_count(joined).sum())
        ones_split = int(np.bitwise_count(pack_bits(a)).sum()) + int(
            np.bitwise_count(pack_bits(b)).sum()
        )
        assert ones == ones_split


class TestComplement:
    def test_flips_valid_bits(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        flipped = unpack_bits(complement(pack_bits(bits), 5), 5)
        assert np.array_equal(flipped, 1 - bits)

    def test_padding_stays_zero(self):
        bits = np.ones(70, dtype=np.uint8)
        words = complement(pack_bits(bits), 70)
        # All valid bits were 1 -> complement has zero popcount overall.
        assert int(np.bitwise_count(words).sum()) == 0

    def test_involution(self):
        bits = np.array([1, 0, 0, 1, 1, 0, 1], dtype=np.uint8)
        words = pack_bits(bits)
        twice = complement(complement(words, 7), 7)
        assert np.array_equal(twice, words)

    def test_exact_word_multiple(self):
        bits = np.zeros(64, dtype=np.uint8)
        words = complement(pack_bits(bits), 64)
        assert int(words[0]) == 0xFFFFFFFFFFFFFFFF

    def test_matrix(self):
        bits = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        flipped = unpack_bits(complement(pack_bits(bits), 2), 2)
        assert np.array_equal(flipped, 1 - bits)

    @given(bit_arrays)
    @settings(max_examples=25)
    def test_popcounts_sum_to_n(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        words = pack_bits(arr)
        comp = complement(words, len(bits))
        ones = int(np.bitwise_count(words).sum())
        comp_ones = int(np.bitwise_count(comp).sum())
        assert ones + comp_ones == len(bits)


class TestGetSetBit:
    def test_get(self):
        bits = np.zeros(130, dtype=np.uint8)
        bits[129] = 1
        words = pack_bits(bits)
        assert get_bit(words, 129) == 1
        assert get_bit(words, 0) == 0

    def test_set_then_get(self):
        words = pack_bits(np.zeros(100, dtype=np.uint8))
        set_bit(words, 77, 1)
        assert get_bit(words, 77) == 1
        set_bit(words, 77, 0)
        assert get_bit(words, 77) == 0

    def test_set_does_not_disturb_neighbours(self):
        words = pack_bits(np.ones(64, dtype=np.uint8))
        set_bit(words, 10, 0)
        assert get_bit(words, 9) == 1
        assert get_bit(words, 11) == 1
        assert int(np.bitwise_count(words).sum()) == 63

    @given(st.integers(0, 199), st.integers(0, 1))
    @settings(max_examples=30)
    def test_set_get_roundtrip(self, position, value):
        words = pack_bits(np.zeros(200, dtype=np.uint8))
        set_bit(words, position, value)
        assert get_bit(words, position) == value


#: Widths that are deliberately *not* multiples of the word size, so
#: every packed row carries a partially-used tail word.
odd_width_bit_arrays = st.integers(min_value=1, max_value=300).filter(
    lambda n: n % WORD_BITS != 0
).flatmap(lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n))


class TestTailWordPadding:
    """pack_bits' documented guarantee: padding bits are always zero.

    The slot kernels and the b-bit codec rely on this -- garbage above
    bit ``n % 64`` of the tail word would survive XOR and corrupt
    popcounts, so the contract is tested explicitly rather than only
    via popcount invariants.
    """

    @given(odd_width_bit_arrays)
    @settings(max_examples=50)
    def test_roundtrip_at_odd_widths(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(arr), len(bits)), arr)

    @given(odd_width_bit_arrays)
    @settings(max_examples=50)
    def test_tail_word_high_bits_are_zero(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        words = pack_bits(arr)
        tail = len(bits) % WORD_BITS
        assert int(words[-1]) >> tail == 0

    @given(bit_matrices)
    @settings(max_examples=30)
    def test_matrix_tail_words_are_zero(self, rows):
        arr = np.array(rows, dtype=np.uint8)
        tail = arr.shape[1] % WORD_BITS
        if tail == 0:
            return
        words = pack_bits(arr)
        assert not np.any(words[:, -1] >> np.uint64(tail))

    def test_all_ones_tail(self):
        """Worst case for stray bits: every valid bit set."""
        for width in (1, 63, 65, 127, 129, 200):
            words = pack_bits(np.ones(width, dtype=np.uint8))
            assert int(np.bitwise_count(words).sum()) == width
