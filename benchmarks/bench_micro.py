"""Microbenchmarks of the pipeline's kernels (wall clock).

Not a paper artifact -- these put real times on the operations the
simulated cost model abstracts: signature computation, ECC encoding,
filter probes, candidate verification, index build and dynamic
maintenance.
"""

import numpy as np
import pytest

from repro.core.ecc import HadamardCode
from repro.core.embedding import SetEmbedder
from repro.core.filter_index import SimilarityFilterIndex
from repro.core.index import SetSimilarityIndex
from repro.core.minhash import MinHasher
from repro.data.weblog import make_weblog_collection
from repro.obs.explain import explain_json
from repro.storage.btree import BTree
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


@pytest.fixture(scope="module")
def sets(scale):
    return make_weblog_collection(n_sets=min(scale.n_sets, 1000), seed=17)


@pytest.fixture(scope="module")
def query_index(sets, scale):
    """A built index shared by the read-only query benchmarks."""
    return SetSimilarityIndex.build(
        sets[:300], budget=100, recall_target=0.85, k=scale.k, seed=3,
        sample_pairs=20_000,
    )


def test_minhash_signature(benchmark, sets, scale):
    hasher = MinHasher(k=scale.k, seed=0)
    benchmark(hasher.signature, sets[0])


def test_ecc_encode(benchmark, scale):
    code = HadamardCode(6)
    rng = np.random.default_rng(0)
    values = rng.integers(0, 64, size=scale.k, dtype=np.uint64)
    benchmark(code.encode, values)


def test_embed_set(benchmark, sets, scale):
    embedder = SetEmbedder(k=scale.k, b=6, seed=0)
    benchmark(embedder.embed, sets[0])


def test_sfi_probe(benchmark, sets, scale):
    embedder = SetEmbedder(k=scale.k, b=6, seed=0)
    matrix = embedder.embed_many(sets)
    sfi = SimilarityFilterIndex(
        0.8, 32, embedder.dimension, PageManager(IOCostModel()),
        expected_entries=len(sets), seed=1,
    )
    sfi.insert_many(matrix, list(range(len(sets))))
    query = embedder.embed(sets[0])
    benchmark(sfi.probe, query)


def test_query_untraced(benchmark, query_index, sets):
    """Full query pipeline with tracing off (the no-op span path).

    Compare against ``test_query_traced``: the gap is the total cost
    of the observability layer, required to stay under 5%... for the
    *disabled* path it is the cost of the disabled checks themselves.
    """
    benchmark(query_index.query, sets[0], 0.5, 1.0)


def test_query_traced(benchmark, query_index, sets, emit_json):
    """Full query pipeline with per-query tracing forced on."""

    def traced():
        return query_index.query(sets[0], 0.5, 1.0, explain=True)

    emit_json("MICRO-query-trace", explain_json(traced().trace))
    benchmark(traced)


def test_index_build_small(benchmark, sets, scale):
    subset = sets[:300]

    def build():
        return SetSimilarityIndex.build(
            subset, budget=100, recall_target=0.85, k=scale.k, seed=3,
            sample_pairs=20_000,
        )

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_index_insert(benchmark, sets, scale):
    index = SetSimilarityIndex.build(
        sets[:300], budget=100, recall_target=0.85, k=scale.k, seed=3,
        sample_pairs=20_000,
    )
    fresh = iter(range(10**6, 10**7))

    def insert_one():
        return index.insert({next(fresh) for _ in range(40)})

    benchmark(insert_one)


def test_btree_insert_search(benchmark):
    def run():
        tree = BTree(PageManager(IOCostModel()), min_degree=32)
        for i in range(1000):
            tree.insert(i, i)
        for i in range(0, 1000, 7):
            tree.search(i)
        return tree

    benchmark.pedantic(run, rounds=3, iterations=1)
