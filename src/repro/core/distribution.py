"""The pairwise similarity distribution ``D_S`` (Section 5).

``D_S(s)`` counts, for every similarity value ``s``, the number of set
pairs in the collection that are ``s``-similar.  The optimizer needs it
to quantify expected false positives/negatives (Definitions 6-7), to
place filter indices equidepth (Definition 10 / Lemma 4) and to split
the similarity axis between DFIs and SFIs (Equation 15).

Computing ``D_S`` exactly takes all ``N(N-1)/2`` pairwise similarities;
Lemma 1 observes a size-``b`` random sample of those pairs can be drawn
in one pass and suffices.  Both paths are provided; the sampled
histogram is scaled up to total-pair mass so the downstream integrals
keep their meaning as expected set counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.minhash import MinHasher
from repro.core.similarity import jaccard


def sample_pairwise_similarities(
    sets: Sequence[frozenset],
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A uniform random sample of pairwise Jaccard similarities (Lemma 1).

    Pairs ``(i, j)``, ``i < j``, are drawn uniformly with replacement;
    with in-memory sets one pass over the data is trivially enough,
    which is the point of the lemma for disk-resident collections.
    """
    n = len(sets)
    if n < 2:
        return np.empty(0, dtype=np.float64)
    i = rng.integers(0, n, size=n_samples)
    j = rng.integers(0, n - 1, size=n_samples)
    j = np.where(j >= i, j + 1, j)  # j != i, uniform over the rest
    return np.fromiter(
        (jaccard(sets[a], sets[b]) for a, b in zip(i, j)),
        dtype=np.float64,
        count=n_samples,
    )


def signature_pairwise_similarities(
    signatures: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Like :func:`sample_pairwise_similarities` but estimated from
    min-hash signatures -- each sample costs ``O(k)`` instead of a full
    set intersection."""
    n = signatures.shape[0]
    if n < 2:
        return np.empty(0, dtype=np.float64)
    i = rng.integers(0, n, size=n_samples)
    j = rng.integers(0, n - 1, size=n_samples)
    j = np.where(j >= i, j + 1, j)
    return (signatures[i] == signatures[j]).mean(axis=1)


class SimilarityDistribution:
    """Histogram form of ``D_S`` over ``n_bins`` equal-width bins of [0, 1].

    ``mass[i]`` is the (possibly estimated) number of set pairs whose
    similarity falls in bin ``i``; ``sum(mass) == N(N-1)/2``.
    """

    def __init__(self, mass: np.ndarray, n_sets: int):
        mass = np.asarray(mass, dtype=np.float64)
        if mass.ndim != 1 or mass.size == 0:
            raise ValueError("mass must be a non-empty 1-d array")
        if np.any(mass < 0):
            raise ValueError("mass must be non-negative")
        self.mass = mass
        self.n_sets = n_sets
        self.n_bins = mass.size
        self.edges = np.linspace(0.0, 1.0, self.n_bins + 1)
        self.centers = (self.edges[:-1] + self.edges[1:]) / 2.0
        self._cumulative = np.concatenate(([0.0], np.cumsum(mass)))

    # -- construction ----------------------------------------------------

    @classmethod
    def from_sets(
        cls,
        sets: Sequence[Iterable],
        n_bins: int = 100,
        sample_pairs: int | None = None,
        seed: int = 0,
        hasher: MinHasher | None = None,
    ) -> "SimilarityDistribution":
        """Estimate ``D_S`` from a collection.

        Parameters
        ----------
        sample_pairs:
            If set (and smaller than the number of pairs), estimate
            from that many sampled pairs per Lemma 1; otherwise compute
            all pairwise similarities exactly.
        hasher:
            If given, sampled similarities are estimated from min-hash
            signatures instead of exact intersections (cheaper for
            large sets, with the estimator's sampling error).
        """
        sets = [s if isinstance(s, frozenset) else frozenset(s) for s in sets]
        n = len(sets)
        total_pairs = n * (n - 1) // 2
        if total_pairs == 0:
            return cls(np.zeros(n_bins), n)
        rng = np.random.default_rng(seed)
        if sample_pairs is not None and sample_pairs < total_pairs:
            if hasher is not None:
                signatures = hasher.signature_matrix(sets)
                values = signature_pairwise_similarities(signatures, sample_pairs, rng)
            else:
                values = sample_pairwise_similarities(sets, sample_pairs, rng)
            scale = total_pairs / len(values)
        else:
            values = np.fromiter(
                (
                    jaccard(sets[i], sets[j])
                    for i in range(n)
                    for j in range(i + 1, n)
                ),
                dtype=np.float64,
                count=total_pairs,
            )
            scale = 1.0
        counts, _ = np.histogram(values, bins=n_bins, range=(0.0, 1.0))
        return cls(counts.astype(np.float64) * scale, n)

    @classmethod
    def from_values(
        cls, values: np.ndarray, n_sets: int, n_bins: int = 100
    ) -> "SimilarityDistribution":
        """Build directly from similarity values (mass = sample counts)."""
        counts, _ = np.histogram(
            np.asarray(values, dtype=np.float64), bins=n_bins, range=(0.0, 1.0)
        )
        return cls(counts.astype(np.float64), n_sets)

    # -- queries ----------------------------------------------------------

    @property
    def total_mass(self) -> float:
        """Total pair count represented: ``~ N(N-1)/2``."""
        return float(self._cumulative[-1])

    def mass_between(self, lo: float, hi: float) -> float:
        """``integral_lo^hi D_S(s) ds`` with linear within-bin interpolation."""
        if hi < lo:
            raise ValueError(f"invalid interval [{lo}, {hi}]")
        return self._cdf(hi) - self._cdf(lo)

    def _cdf(self, s: float) -> float:
        s = min(1.0, max(0.0, s))
        position = s * self.n_bins
        index = min(self.n_bins - 1, int(position))
        fraction = position - index
        return float(self._cumulative[index] + fraction * self.mass[index])

    def quantile(self, q: float) -> float:
        """Similarity value below which a ``q`` fraction of pair mass lies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        target = q * self.total_mass
        index = int(np.searchsorted(self._cumulative, target, side="left"))
        index = min(max(index - 1, 0), self.n_bins - 1)
        below = self._cumulative[index]
        bin_mass = self.mass[index]
        fraction = 0.0 if bin_mass == 0 else (target - below) / bin_mass
        fraction = min(1.0, max(0.0, fraction))
        return float(self.edges[index] + fraction * (self.edges[index + 1] - self.edges[index]))

    def equidepth_points(self, n_intervals: int) -> list[float]:
        """Interior cut points of a ``n_intervals``-wise equidepth
        decomposition (Definition 10): ``n_intervals - 1`` points that
        split the pair mass into equal parts."""
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        return [self.quantile(i / n_intervals) for i in range(1, n_intervals)]

    def delta_split(self) -> float:
        """The ``delta`` of Equation 15: equal pair mass on either side."""
        return self.quantile(0.5)
