"""Worker-process side of the ``backend="process"`` executor.

Every function here is a plain module-level callable so the pool's
``spawn`` start method (the only one that is safe on every platform
and under threads) can pickle references to it.  Each worker process
initializes once by mapping the shared snapshot directory
(:func:`worker_init`); because :func:`repro.exec.snapfile.open_snapshot`
is O(ms) and ``np.memmap`` pages are shared between processes, adding
a worker costs an interpreter start, not an index copy.

A task arrives as a ``spec`` tuple -- ``(stage, *payload)`` -- runs the
same per-task body the thread backend runs, and returns everything the
parent needs to merge deterministically:

- the stage result (probe sid lists / embedding matrix / answers);
- the task's private :class:`~repro.storage.iomodel.IOStats`;
- the task's **full-registry metrics delta**.  Workers are
  single-threaded, so a before/after snapshot of the registry
  (:func:`repro.obs.metrics.registry_values`) brackets exactly this
  task's movements -- counters, gauges, fixed-bucket *and* HDR
  histograms; the parent folds the delta into its own registry
  (:func:`repro.obs.metrics.apply_deltas`), making process totals
  indistinguishable from thread-backend totals for every instrument
  kind.  (The historical payload shipped counters only, silently
  dropping histogram observations -- e.g. ``sfi.table_candidates`` --
  at the process boundary.)
"""

from __future__ import annotations

import os
import time

from repro.obs import metrics
from repro.storage.iomodel import IOStats

#: The worker's mapped snapshot, set once per process by ``worker_init``.
_SNAP = None


def worker_init(path: str) -> None:
    """Pool initializer: map the snapshot this worker will serve."""
    global _SNAP
    from repro.exec.snapfile import open_snapshot

    _SNAP = open_snapshot(path)


def _embed(snap, io, query_sets):
    io.cpu_ops += snap.embedder.k * len(query_sets)
    return snap.embedder.embed_many(query_sets)


def _probe(snap, io, kind, point, t, matrix):
    return snap.filter_probe(kind, point).probe_table(t, matrix, io)


def _verify(snap, io, items, sigma_low, sigma_high):
    return [
        snap.verify_one(query_set, candidates, sigma_low, sigma_high, io)
        for query_set, candidates in items
    ]


def _scan(snap, io, items, sigma_low, sigma_high):
    return [
        snap.scan_one(query_set, sigma_low, sigma_high, io)
        for query_set in items
    ]


_STAGES = {"embed": _embed, "probe": _probe, "verify": _verify, "scan": _scan}


def run_task(spec: tuple) -> dict:
    """Execute one sharded task; see the module docstring for the
    returned merge payload."""
    stage = spec[0]
    io = IOStats()
    before = metrics.registry_values()
    t0 = time.perf_counter()
    result = _STAGES[stage](_SNAP, io, *spec[1:])
    seconds = time.perf_counter() - t0
    after = metrics.registry_values()
    delta = metrics.registry_delta(before, after)
    return {
        "result": result,
        "io": io,
        "seconds": seconds,
        "worker": f"pid-{os.getpid()}",
        # Full-registry delta, plus the counter slice under its legacy
        # key so mixed-version parents keep folding counters.
        "metrics": delta,
        "counters": delta.get("counters", {}),
    }
