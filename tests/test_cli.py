"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, read_sets


@pytest.fixture
def sets_file(tmp_path):
    path = tmp_path / "sets.txt"
    path.write_text(
        "apple banana cherry\n"
        "banana cherry date\n"
        "\n"  # blank lines are skipped
        "x y z\n"
        "apple banana cherry date\n"
    )
    return path


class TestReadSets:
    def test_parses_lines(self, sets_file):
        sets = read_sets(sets_file)
        assert len(sets) == 4
        assert sets[0] == frozenset({"apple", "banana", "cherry"})

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(ValueError):
            read_sets(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(
            ["build", "--input", "a.txt", "--output", "b.ssi"]
        )
        assert args.budget == 500
        assert args.recall == 0.9


class TestEndToEnd:
    def test_build_query_stats(self, sets_file, tmp_path, capsys):
        index_path = tmp_path / "demo.ssi"
        rc = main(
            [
                "build",
                "--input", str(sets_file),
                "--output", str(index_path),
                "--budget", "20",
                "--k", "16",
            ]
        )
        assert rc == 0
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "indexed 4 sets" in out

        rc = main(
            [
                "query",
                "--index", str(index_path),
                "--set", "apple banana cherry",
                "--low", "0.9",
                "--high", "1.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0\t1.0000" in out

        rc = main(["stats", "--index", str(index_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sets indexed:      4" in out

    def test_demo_command(self, capsys):
        rc = main(["demo", "--n-sets", "60"])
        assert rc == 0
        assert "demo index" in capsys.readouterr().out


@pytest.fixture
def built_index_path(sets_file, tmp_path):
    index_path = tmp_path / "demo.ssi"
    rc = main(
        [
            "build",
            "--input", str(sets_file),
            "--output", str(index_path),
            "--budget", "20",
            "--k", "16",
        ]
    )
    assert rc == 0
    return index_path


class TestObservabilityCommands:
    def test_query_explain_appends_plan_tree(self, built_index_path, capsys):
        capsys.readouterr()
        rc = main(
            [
                "query",
                "--index", str(built_index_path),
                "--set", "apple banana cherry",
                "--low", "0.5",
                "--explain",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0\t1.0000" in out  # answers still printed
        assert out.splitlines()[-1:] != []
        assert "query" in out and "candidates" in out
        assert "probe SFI" in out or "probe DFI" in out
        assert "s*=" in out and "buckets=" in out and "survived=" in out

    def test_explain_subcommand_tree(self, built_index_path, capsys):
        capsys.readouterr()
        rc = main(
            [
                "explain",
                "--index", str(built_index_path),
                "--set", "apple banana cherry",
                "--low", "0.5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("query")
        assert "\t" not in out.splitlines()[0]  # no answer lines
        assert "verify" in out

    def test_explain_subcommand_json(self, built_index_path, capsys):
        import json

        capsys.readouterr()
        rc = main(
            [
                "explain",
                "--index", str(built_index_path),
                "--set", "apple banana cherry",
                "--low", "0.5",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"query", "filters", "io", "duration_ms", "trace"}
        for f in payload["filters"]:
            assert f["kind"] in ("SFI", "DFI")
            assert f["survived"] <= f["candidates"]

    def test_stats_reports_occupancy(self, built_index_path, capsys):
        capsys.readouterr()
        rc = main(["stats", "--index", str(built_index_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-filter occupancy:" in out
        assert "load factor" in out
        assert "longest chain" in out

    def test_verbose_flag_logs_to_stderr(self, sets_file, tmp_path, capsys):
        import logging

        rc = main(
            [
                "-v",
                "build",
                "--input", str(sets_file),
                "--output", str(tmp_path / "v.ssi"),
                "--budget", "20",
                "--k", "16",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "building index" in err
        # Restore the default level for other tests.
        from repro.obs import configure_logging

        assert configure_logging(0).level == logging.WARNING


class TestSnapshotCommands:
    def test_save_info_verify(self, built_index_path, tmp_path, capsys):
        snap_dir = tmp_path / "snap.d"
        rc = main(
            ["snapshot", "save", "--index", str(built_index_path),
             "--out", str(snap_dir)]
        )
        assert rc == 0
        assert (snap_dir / "manifest.json").exists()
        assert "snapshot" in capsys.readouterr().out

        rc = main(["snapshot", "info", "--path", str(snap_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-ssi-snapshot" in out
        assert "arrays:" in out

        rc = main(["snapshot", "verify", "--path", str(snap_dir)])
        assert rc == 0
        assert "all checksums pass" in capsys.readouterr().out

    def test_snapshot_serve_removed(self, built_index_path, tmp_path, capsys):
        """Old `snapshot serve` command lines parse but error with a
        pointer at `repro serve`."""
        snap_dir = tmp_path / "snap.d"
        assert main(["snapshot", "save", "--index", str(built_index_path),
                     "--out", str(snap_dir)]) == 0
        capsys.readouterr()
        rc = main(
            ["snapshot", "serve", "--path", str(snap_dir),
             "--set", "apple banana cherry", "--low", "0.9", "--high", "1.0"]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.out == ""
        assert "removed" in captured.err
        assert "repro serve --snapshot" in captured.err

    def test_verify_reports_corruption(self, built_index_path, tmp_path, capsys):
        snap_dir = tmp_path / "snap.d"
        assert main(
            ["snapshot", "save", "--index", str(built_index_path),
             "--out", str(snap_dir)]
        ) == 0
        capsys.readouterr()
        blob = bytearray((snap_dir / "arrays.bin").read_bytes())
        blob[-1] ^= 0xFF
        (snap_dir / "arrays.bin").write_bytes(bytes(blob))
        rc = main(["snapshot", "verify", "--path", str(snap_dir)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err

    def test_query_from_snapshot_matches_index(
        self, built_index_path, tmp_path, capsys
    ):
        snap_dir = tmp_path / "snap.d"
        assert main(
            ["snapshot", "save", "--index", str(built_index_path),
             "--out", str(snap_dir)]
        ) == 0
        capsys.readouterr()
        argv = ["--set", "apple banana cherry", "--set", "x y z",
                "--low", "0.2", "--high", "1.0"]
        assert main(["query", "--index", str(built_index_path)] + argv) == 0
        from_index = capsys.readouterr().out
        assert main(["query", "--snapshot", str(snap_dir)] + argv) == 0
        from_snapshot = capsys.readouterr().out
        assert from_snapshot == from_index

    def test_query_rejects_index_and_snapshot_together(
        self, built_index_path, capsys
    ):
        rc = main(
            ["query", "--index", str(built_index_path),
             "--snapshot", "somewhere", "--set", "a b"]
        )
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

    def test_query_rejects_neither_source(self, capsys):
        rc = main(["query", "--set", "a b"])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

    def test_process_backend_requires_snapshot(self, built_index_path, capsys):
        rc = main(
            ["query", "--index", str(built_index_path),
             "--set", "a b", "--backend", "process"]
        )
        assert rc == 2
        assert "requires --snapshot" in capsys.readouterr().err


@pytest.fixture
def shard_sets_file(tmp_path):
    """A set file big enough that hash partitioning fills every shard."""
    import random

    rng = random.Random(17)
    path = tmp_path / "shard_sets.txt"
    path.write_text("\n".join(
        " ".join(str(x) for x in rng.sample(range(300), rng.randint(4, 14)))
        for _ in range(80)
    ) + "\n")
    return path


class TestShardCommands:
    def test_build_info_verify_stats(self, shard_sets_file, tmp_path, capsys):
        shard_dir = tmp_path / "shards.d"
        rc = main([
            "shard", "build", "--input", str(shard_sets_file),
            "--out", str(shard_dir), "--shards", "3", "--budget", "24",
            "--k", "16", "--bits", "4", "--sample-pairs", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 shards" in out
        assert (shard_dir / "shard_manifest.json").exists()

        rc = main(["shard", "info", "--path", str(shard_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-ssi-shards" in out
        assert "shard-000" in out

        rc = main(["shard", "verify", "--path", str(shard_dir)])
        assert rc == 0
        assert "all checksums pass" in capsys.readouterr().out

        rc = main(["stats", "--shards", str(shard_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-shard occupancy" in out
        assert "budget allocation" in out

    def test_verify_reports_corruption(self, shard_sets_file, tmp_path, capsys):
        shard_dir = tmp_path / "shards.d"
        assert main([
            "shard", "build", "--input", str(shard_sets_file),
            "--out", str(shard_dir), "--shards", "2", "--budget", "16",
            "--k", "16", "--bits", "4", "--sample-pairs", "500",
        ]) == 0
        capsys.readouterr()
        import json

        victim = next(shard_dir.glob("shard-*/arrays.bin"))
        # Flip a byte inside a named array (padding isn't checksummed).
        manifest = json.loads((victim.parent / "manifest.json").read_text())
        spec = max(manifest["arrays"].values(), key=lambda s: s["nbytes"])
        blob = bytearray(victim.read_bytes())
        blob[spec["offset"] + spec["nbytes"] // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        rc = main(["shard", "verify", "--path", str(shard_dir)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err

    def test_workload_tuned_build(self, shard_sets_file, tmp_path, capsys):
        shard_dir = tmp_path / "tuned.d"
        rc = main([
            "shard", "build", "--input", str(shard_sets_file),
            "--out", str(shard_dir), "--shards", "2",
            "--partition", "cluster", "--tune", "workload",
            "--budget", "24", "--k", "16", "--bits", "4",
            "--sample-pairs", "500",
            "--workload", str(shard_sets_file),
            "--workload-low", "0.3", "--workload-high", "0.9",
        ])
        assert rc == 0
        assert "tune=workload" in capsys.readouterr().out

    def test_stats_rejects_index_and_shards_together(self, capsys):
        rc = main(["stats", "--index", "a", "--shards", "b"])
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_stats_requires_a_source(self, capsys):
        rc = main(["stats"])
        assert rc == 2
        assert "required" in capsys.readouterr().err


class TestLoadgenFlags:
    def test_requests_is_an_alias_for_total(self):
        args = build_parser().parse_args(
            ["loadgen", "--requests", "25", "--synthetic", "4"]
        )
        assert args.total == 25
        args = build_parser().parse_args(
            ["loadgen", "--total", "30", "--synthetic", "4"]
        )
        assert args.total == 30

    def test_serve_accepts_shards_alias(self):
        args = build_parser().parse_args(["serve", "--shards", "some.d"])
        assert args.snapshot == "some.d"
