"""Shard routing: sound per-shard Jaccard upper bounds from tiny summaries.

PR 8's scatter-gather fans every batch out to all ``K`` shards, so the
fleet pays ``K`` probe/verify costs even when most shards provably
contain nothing in the query's similarity range.  This module computes,
at ``build_sharded`` time, a few hundred bytes of **routing summary**
per shard:

* the exact ``[size_min, size_max]`` range of set sizes in the shard;
* a membership bitset over the shard's element universe -- every
  distinct element's :func:`~repro.exec.columnar.element_hash` is
  avalanched (splitmix64) into an ``m``-bit table (``m`` a power of
  two, sized to <= 12.5% fill at build time), so a query element whose
  bit is clear is *provably absent* from every set in the shard;
* a ``k``-coordinate MinHash signature of the shard's universe (the
  D_S-profile used by the opt-in ``sketch`` mode).

:class:`ShardRouter` turns a summary into a **sound upper bound** on
``max_{S in shard} J(q, S)``:

* ``|q ∩ S| <= c`` where ``c`` counts the query elements whose bit is
  set (the bitset has no false negatives; hash collisions only inflate
  ``c``, never deflate it);
* ``|q ∩ S| <= min(|q|, |S|)`` with ``|S|`` in ``[size_min,
  size_max]``.

Writing ``t = min(|q|, c)``, the Jaccard ``J = i / (|q| + s - i)`` with
``i <= min(t, s)`` is maximized at ``i = min(t, s)``; as a function of
``s`` that is increasing for ``s <= t`` and decreasing for ``s >= t``,
so the max over ``s in [size_min, size_max]`` sits at ``s* =
clamp(t, size_min, size_max)``:

    ``bound = min(s*, t) / (s* + |q| - min(s*, t))``

A shard is prunable for a query iff ``bound < sigma_low`` (strictly --
``sigma_low = 0`` never prunes).  Because the bound is an upper bound
on the *true* Jaccard of every set in the shard, a pruned (query,
shard) pair can contribute no in-range answer: skipping its
verification (``route="safe"``) or its whole dispatch
(``route="sketch"``) loses nothing.  The empty query is handled
exactly: it matches only empty sets (``J = 1``, the engine-wide
empty-vs-empty convention), so its bound is 1.0 iff the shard holds an
empty set.

``sketch`` mode additionally tightens ``c`` with the MinHash profile:
the agreement fraction ``a`` between the query's signature and the
shard-universe signature estimates ``J(q, U)``, hence ``|q ∩ U| ~
a/(1+a) * (|q| + |U|)``.  The estimate carries MinHash variance (an
upper-confidence slack of ``1/sqrt(k)`` is added), so sketch routing
is *not* exact -- callers measure recall (see BENCH-ROUTE).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exec.columnar import element_hash

#: Per-shard routing summaries (bitset words + universe signatures),
#: written next to the shard manifest by ``build_sharded``.
ROUTING_FILE = "routing.bin"

#: MinHash coordinates in the per-shard universe profile.
DEFAULT_SIG_K = 32

#: Folded into the build seed for the routing MinHasher, so the
#: router's permutations are independent of the index embedding's
#: (which derive from ``seed + 7919 * (offset + 1)``).
SIG_SEED_OFFSET = 9173

_MIN_BITS = 1 << 10
_MAX_BITS = 1 << 22


def mix64(values) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array.

    The scalar twin lives in :mod:`repro.exec.shard`; this one rides
    numpy's wrapping uint64 arithmetic for whole element arrays.
    """
    x = np.array(values, dtype=np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def jaccard_upper_bound(
    q_size: int, c: int, size_lo: int, size_hi: int
) -> float:
    """Max possible ``J(q, S)`` over sets with ``|S| in [size_lo,
    size_hi]`` and ``|q ∩ S| <= c`` (see the module docstring for the
    derivation and soundness argument)."""
    if q_size == 0:
        # The empty query matches only empty sets (J = 1 by the
        # engine-wide empty-vs-empty convention).
        return 1.0 if size_lo == 0 else 0.0
    t = min(q_size, c)
    s = min(max(t, size_lo), size_hi)
    i = min(s, t)
    return i / (s + q_size - i)


def _pick_bits(max_universe: int) -> int:
    """Global bitset width: power of two, >= 8x the largest shard
    universe (<= 12.5% fill), clamped to [2^10, 2^22] (128 B - 512 KiB
    of words per shard)."""
    target = max(_MIN_BITS, 8 * max(1, max_universe))
    return min(_MAX_BITS, 1 << (target - 1).bit_length())


def _bit_positions(elements, m_bits: int):
    """(word index, word mask) arrays for a collection of elements."""
    hashes = np.fromiter(
        (element_hash(e) for e in elements),
        dtype=np.uint64,
        count=len(elements),
    )
    pos = mix64(hashes) & np.uint64(m_bits - 1)
    return (pos >> np.uint64(6)).astype(np.int64), (
        np.uint64(1) << (pos & np.uint64(63))
    )


@dataclass
class ShardSummary:
    """Decoded routing summary of one live shard."""

    size_min: int
    size_max: int
    n_universe: int
    bits: np.ndarray  # uint64 words, m_bits / 64 of them
    signature: np.ndarray | None  # uint64 (sig_k,), None if universe empty


@dataclass
class RoutingInfo:
    """All shard summaries plus the shared hashing parameters."""

    m_bits: int
    sig_k: int
    sig_seed: int
    summaries: list  # ShardSummary | None per shard (None = empty shard)
    #: Signature generator of the universe profiles ("minhash" or
    #: "superminhash") -- the index codec's generator, so sketch-mode
    #: agreement estimates share the builder's variance profile.
    #: Pre-v3 manifests omit the key and default to "minhash".
    sig_scheme: str = "minhash"


def build_routing(
    shard_sets, seed: int = 0, sig_k: int = DEFAULT_SIG_K,
    sig_scheme: str = "minhash",
) -> tuple[dict, dict]:
    """Compute routing summaries for a partitioned collection.

    Returns ``(meta, arrays)``: the JSON-safe manifest block (sans
    array specs -- the caller persists ``arrays`` via ``write_arrays``
    and attaches the specs) and the uint64 arrays for ``routing.bin``.

    ``sig_scheme`` picks the universe-profile generator; sharded
    builds pass their codec's generator so the router's sketch
    estimates reuse the same signature scheme as the index.
    """
    from repro.core.codec import make_hasher

    shard_sets = [
        [s if isinstance(s, frozenset) else frozenset(s) for s in ss]
        for ss in shard_sets
    ]
    universes = [
        frozenset().union(*ss) if ss else frozenset() for ss in shard_sets
    ]
    m_bits = _pick_bits(max((len(u) for u in universes), default=0))
    sig_seed = seed + SIG_SEED_OFFSET
    hasher = make_hasher(sig_scheme, sig_k, sig_seed)
    arrays: dict[str, np.ndarray] = {}
    entries: list[dict | None] = []
    for i, (ss, universe) in enumerate(zip(shard_sets, universes)):
        if not ss:
            entries.append(None)  # empty shard: never dispatched
            continue
        words = np.zeros(m_bits // 64, dtype=np.uint64)
        if universe:
            widx, wmask = _bit_positions(sorted_stable(universe), m_bits)
            np.bitwise_or.at(words, widx, wmask)
            arrays[f"route{i:03d}_sig"] = hasher.signature(universe)
        arrays[f"route{i:03d}_bits"] = words
        sizes = [len(s) for s in ss]
        entries.append({
            "size_min": min(sizes),
            "size_max": max(sizes),
            "n_universe": len(universe),
        })
    meta = {
        "m_bits": m_bits,
        "sig_k": sig_k,
        "sig_seed": sig_seed,
        "sig_scheme": sig_scheme,
        "shards": entries,
    }
    return meta, arrays


def sorted_stable(elements):
    """Deterministic element order for mixed-type universes.

    Sorting by ``(type name, repr)`` never compares unlike types, so
    the bit-build order -- hence ``routing.bin`` bytes -- is stable for
    a given universe regardless of set/dict iteration order.
    """
    return sorted(elements, key=lambda e: (type(e).__name__, repr(e)))


def load_routing(path, manifest: dict, verify: bool = False):
    """Decode the routing block of a shard manifest; None if absent
    (v1 manifests, or builds with ``routing=False``)."""
    from repro.exec.snapfile import open_arrays

    meta = manifest.get("routing")
    if not meta:
        return None
    arrays = (
        open_arrays(Path(path) / ROUTING_FILE, meta["arrays"], verify=verify)
        if meta.get("arrays") else {}
    )
    summaries: list = []
    for i, entry in enumerate(meta["shards"]):
        if entry is None:
            summaries.append(None)
            continue
        sig = arrays.get(f"route{i:03d}_sig")
        summaries.append(ShardSummary(
            size_min=int(entry["size_min"]),
            size_max=int(entry["size_max"]),
            n_universe=int(entry["n_universe"]),
            bits=np.asarray(arrays[f"route{i:03d}_bits"], dtype=np.uint64),
            signature=(
                np.asarray(sig, dtype=np.uint64) if sig is not None else None
            ),
        ))
    return RoutingInfo(
        m_bits=int(meta["m_bits"]),
        sig_k=int(meta["sig_k"]),
        sig_seed=int(meta["sig_seed"]),
        summaries=summaries,
        sig_scheme=meta.get("sig_scheme", "minhash"),
    )


@dataclass
class RouteDecision:
    """Which (query, shard) pairs survive routing for one batch."""

    mode: str  # "safe" | "sketch"
    kept: dict  # shard index -> sorted list of surviving query rows
    n_queries: int
    n_pairs: int  # (query, live shard) pairs considered
    pruned_pairs: int

    def skipped_shards(self) -> list[int]:
        """Shards with no surviving query (undispatched in sketch
        mode; fully verify-masked in safe mode)."""
        return [i for i, rows in self.kept.items() if not rows]


class ShardRouter:
    """Batch routing decisions from a :class:`RoutingInfo`.

    ``route(...)`` evaluates the sound bound of the module docstring
    for every (query, live shard) pair and keeps the pair iff
    ``bound >= sigma_low``.  With ``sketch=True`` the MinHash universe
    profile additionally tightens ``c`` -- deeper pruning, estimated
    rather than proven, so only the opt-in ``route="sketch"`` path
    uses it.
    """

    def __init__(self, routing: RoutingInfo):
        from repro.core.codec import make_hasher

        self.routing = routing
        self._hasher = make_hasher(
            routing.sig_scheme, routing.sig_k, routing.sig_seed
        )

    def route(
        self, query_sets, sigma_low: float, shard_ids, sketch: bool = False
    ) -> RouteDecision:
        info = self.routing
        shard_ids = list(shard_ids)
        kept: dict[int, list[int]] = {i: [] for i in shard_ids}
        # Shards with summaries, their bitsets stacked so each query
        # computes every shard's overlap cap in one numpy expression
        # (the decision must stay far below one shard's probe wall).
        # A live shard without a summary (a foreign manifest) is never
        # pruned -- kept blind for every query.
        summarized = [i for i in shard_ids if info.summaries[i] is not None]
        blind = [i for i in shard_ids if info.summaries[i] is None]
        bits = (
            np.stack([info.summaries[i].bits for i in summarized])
            if summarized else None
        )
        pruned = 0
        n_pairs = len(summarized) * len(query_sets)
        slack = 1.0 / math.sqrt(info.sig_k) if info.sig_k > 0 else 0.0
        # One batched hashing pass for every query element (the
        # per-query splitmix positions are slices of it), and -- in
        # sketch mode -- one vectorized ``signature_matrix`` pass over
        # the whole batch (bit-identical to per-set ``signature``).
        offsets = [0]
        all_elems: list = []
        for q in query_sets:
            all_elems.extend(q)
            offsets.append(len(all_elems))
        widx_all, wmask_all = (
            _bit_positions(all_elems, info.m_bits) if all_elems
            else (None, None)
        )
        qsigs: dict[int, np.ndarray] = {}
        sig_stack = have_sig = n_universe = None
        if sketch and summarized:
            nonempty = [r for r, q in enumerate(query_sets) if q]
            if nonempty:
                matrix = self._hasher.signature_matrix(
                    [query_sets[r] for r in nonempty]
                )
                qsigs = {r: matrix[j] for j, r in enumerate(nonempty)}
            have_sig = np.array([
                info.summaries[i].signature is not None for i in summarized
            ])
            sig_stack = np.stack([
                info.summaries[i].signature
                if info.summaries[i].signature is not None
                else np.zeros(info.sig_k, dtype=np.uint64)
                for i in summarized
            ])
            n_universe = np.array([
                info.summaries[i].n_universe for i in summarized
            ], dtype=np.float64)
        for r, q in enumerate(query_sets):
            for i in blind:
                kept[i].append(r)
            if not summarized:
                continue
            q_size = len(q)
            if q_size == 0:
                counts = np.zeros(len(summarized), dtype=np.int64)
            else:
                sl = slice(offsets[r], offsets[r + 1])
                counts = np.count_nonzero(
                    bits[:, widx_all[sl]] & wmask_all[np.newaxis, sl], axis=1
                )
            qsig = qsigs.get(r)
            if qsig is not None:
                # Tighten every shard's cap at once: the J(q, U)
                # agreement estimate a -> |q ∩ U| ~ a/(1+a) *
                # (|q| + |U|), padded by the signature's sampling noise
                # (slack) before it may shrink c.
                a = np.minimum(
                    1.0, (sig_stack == qsig).mean(axis=1) + slack
                )
                c_sig = np.ceil(a / (1.0 + a) * (q_size + n_universe))
                counts = np.where(
                    have_sig,
                    np.minimum(counts, c_sig.astype(np.int64)),
                    counts,
                )
            for j, i in enumerate(summarized):
                summary = info.summaries[i]
                bound = jaccard_upper_bound(
                    q_size, int(counts[j]), summary.size_min,
                    summary.size_max,
                )
                if bound < sigma_low:
                    pruned += 1
                else:
                    kept[i].append(r)
        return RouteDecision(
            mode="sketch" if sketch else "safe",
            kept=kept,
            n_queries=len(query_sets),
            n_pairs=n_pairs,
            pruned_pairs=pruned,
        )
