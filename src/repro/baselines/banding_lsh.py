"""Signature banding -- the modern MinHash-LSH alternative.

The paper reaches its filter indices through a detour: min-hash values
are ECC-encoded into a Hamming space, and hash keys sample *bits* of
the embedding.  The approach that later became standard (datasketch,
Mining of Massive Datasets) skips the embedding: keys are *bands* of
``r`` raw min-hash values, so two sets share a band's bucket with
probability ``s**r`` in **Jaccard** similarity directly, giving

    p_banding(s) = 1 - (1 - s**r) ** l.

The bit-sampling filter obeys the same formula but in *Hamming*
similarity ``(1+s)/2``, which compresses all of Jaccard into [1/2, 1]:
for equal table counts the banding curve is much steeper at low and
mid thresholds.  ``BandingIndex`` implements the modern scheme with
the same interface as
:class:`~repro.core.filter_index.SimilarityFilterIndex` so the two can
be benchmarked head to head (ABL-BANDING), quantifying what the ECC
detour costs.

Historical note: the embedding buys the paper a clean reduction to
Hamming-space range queries (Theorems 1-2) and, uniquely, the
*complement trick* for dissimilarity retrieval -- banding has no
analogue of a DFI, because you cannot "complement" a min-hash
signature.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.filter_function import FilterFunction
from repro.obs import metrics, trace
from repro.storage.hashtable import BucketHashTable
from repro.storage.pager import PageManager

_PROBES = metrics.counter("banding.probes")
_CANDIDATES = metrics.counter("banding.candidates")
_BATCHES = metrics.counter("banding.batch_probes")
# Shared with the hash-table layer (see BucketHashTable.probe_many).
_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")


class BandingIndex:
    """MinHash-LSH by banding: ``l`` bands of ``r`` signature values.

    Parameters
    ----------
    threshold:
        Target turning point in **Jaccard** similarity: the band count
        and width are chosen so two sets at this similarity collide in
        at least one band with probability 1/2.
    n_tables:
        Number of bands ``l`` (one hash table each).
    k:
        Signature length; bands sample ``r`` of the ``k`` positions
        (with replacement across bands, contiguous is not required).
    pager:
        Storage/IO backend, as for the filter indices.
    """

    def __init__(
        self,
        threshold: float,
        n_tables: int,
        k: int,
        pager: PageManager,
        expected_entries: int = 1024,
        seed: int = 0,
    ):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if n_tables <= 0:
            raise ValueError(f"n_tables must be positive, got {n_tables}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.threshold = threshold
        self.k = k
        self.filter = FilterFunction.for_threshold(threshold, n_tables)
        rng = np.random.default_rng(seed)
        self._bands = [
            rng.integers(0, k, size=self.filter.r, dtype=np.int64)
            for _ in range(n_tables)
        ]
        slots = pager.capacity_for(16)
        n_buckets = max(1, -(-expected_entries // slots)) * 2
        self._tables = [BucketHashTable(pager, n_buckets) for _ in range(n_tables)]

    @property
    def r(self) -> int:
        """Signature values per band."""
        return self.filter.r

    @property
    def n_tables(self) -> int:
        """Number of bands."""
        return len(self._tables)

    def _keys(self, signature: np.ndarray) -> list[bytes]:
        if signature.shape != (self.k,):
            raise ValueError(
                f"signature must have shape ({self.k},), got {signature.shape}"
            )
        return [signature[band].tobytes() for band in self._bands]

    def insert(self, signature: np.ndarray, sid: int) -> None:
        """Index one min-hash signature under its set identifier."""
        for key, table in zip(self._keys(signature), self._tables):
            table.insert(key, sid)

    def insert_many(self, signatures: np.ndarray, sids: Sequence[int]) -> None:
        """Bulk-index rows of a ``(N, k)`` signature matrix."""
        if signatures.shape[0] != len(sids):
            raise ValueError(
                f"matrix has {signatures.shape[0]} rows but {len(sids)} sids given"
            )
        for row, sid in zip(signatures, sids):
            self.insert(row, sid)

    def delete(self, signature: np.ndarray, sid: int) -> None:
        """Remove a previously inserted (signature, sid) pair."""
        for key, table in zip(self._keys(signature), self._tables):
            table.delete(key, sid)

    def probe(self, signature: np.ndarray) -> set[int]:
        """Sids colliding with the query in at least one band."""
        with trace.span(
            "banding_probe", s_star=self.threshold, r=self.r, l=self.n_tables
        ) as sp:
            sids: set[int] = set()
            for key, table in zip(self._keys(signature), self._tables):
                sids.update(table.probe(key))
            _PROBES.inc()
            _CANDIDATES.inc(len(sids))
            if sp.recording:
                sp.set(
                    tables_probed=self.n_tables, candidates=len(sids), _sids=sids
                )
            return sids

    def probe_batch(self, signatures: np.ndarray) -> list[set[int]]:
        """Band-probe every row of a ``(N, k)`` signature matrix.

        Equivalent to ``[self.probe(row) for row in signatures]`` but
        each band's keys are probed together with grouped bucket reads
        (:meth:`~repro.storage.hashtable.BucketHashTable.probe_many`),
        so bucket pages shared between queries are read once.
        """
        if signatures.ndim != 2 or signatures.shape[1] != self.k:
            raise ValueError(
                f"signatures must have shape (N, {self.k}), got {signatures.shape}"
            )
        n = signatures.shape[0]
        if n == 0:
            return []
        saved_before = _PAGES_SAVED.local_value
        with trace.span(
            "banding_probe_batch",
            s_star=self.threshold,
            r=self.r,
            l=self.n_tables,
            n_queries=n,
        ) as sp:
            sids: list[set[int]] = [set() for _ in range(n)]
            for band, table in zip(self._bands, self._tables):
                keys = [row.tobytes() for row in signatures[:, band]]
                for i, got in enumerate(table.probe_many(keys)):
                    sids[i].update(got)
            _BATCHES.inc()
            _PROBES.inc(n)
            _CANDIDATES.inc(sum(len(s) for s in sids))
            if sp.recording:
                sp.set(
                    tables_probed=self.n_tables,
                    candidates=sum(len(s) for s in sids),
                    pages_saved=_PAGES_SAVED.local_value - saved_before,
                    _sids_per_query=sids,
                )
            return sids

    def collision_probability(self, s) -> float | np.ndarray:
        """``p(s) = 1 - (1 - s**r)**l`` in Jaccard similarity."""
        return self.filter(s)

    def __repr__(self) -> str:
        return (
            f"BandingIndex(threshold={self.threshold:.3f}, "
            f"l={self.n_tables}, r={self.r})"
        )
