"""Set-similarity self-join.

"Return all pairs of sets with similarity at least t" -- the join
algorithm Section 1 motivates.  The indexed variant asks one
``query_above`` per set and dedupes pairs; because each per-query
answer is exact-verified, the join's *precision* is 1 and its recall is
the index's per-query recall (a pair is found if either endpoint's
probe captures the other).

``exact_self_join`` is the inverted-index nested baseline used for
scoring and for small collections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.baselines.inverted_index import InvertedIndex
from repro.core.index import SetSimilarityIndex


@dataclass(frozen=True)
class JoinPair:
    """One joined pair; ``low < high`` by set identifier."""

    low: int
    high: int
    similarity: float


def similarity_self_join(
    index: SetSimilarityIndex,
    sets: Sequence[frozenset],
    threshold: float,
) -> list[JoinPair]:
    """All pairs of indexed sets with similarity >= ``threshold``.

    ``sets`` must be the collection the index was built over, in sid
    order (the index stores sets on simulated disk; passing them avoids
    one random fetch per probe).

    A pair is reported if *either* endpoint's probe retrieves the
    other, so join recall is ``1 - (1 - rho)**2`` for per-query recall
    ``rho`` -- better than any single query's.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    pairs: dict[tuple[int, int], float] = {}
    for sid, elements in enumerate(sets):
        result = index.query_above(elements, threshold)
        for other, similarity in result.answers:
            if other == sid:
                continue
            key = (sid, other) if sid < other else (other, sid)
            pairs.setdefault(key, similarity)
    return sorted(
        (JoinPair(low, high, sim) for (low, high), sim in pairs.items()),
        key=lambda p: (-p.similarity, p.low, p.high),
    )


def exact_self_join(
    sets: Sequence[frozenset], threshold: float
) -> list[JoinPair]:
    """Exact self-join via the inverted index (ground truth)."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    oracle = InvertedIndex(sets)
    pairs = []
    for sid, elements in enumerate(sets):
        for other, similarity in oracle.similarities(elements).items():
            if other > sid and similarity >= threshold:
                pairs.append(JoinPair(sid, other, similarity))
    pairs.sort(key=lambda p: (-p.similarity, p.low, p.high))
    return pairs


def join_recall(
    approximate: Iterator[JoinPair], exact: Iterator[JoinPair]
) -> float:
    """Fraction of true pairs the indexed join recovered."""
    got = {(p.low, p.high) for p in approximate}
    truth = {(p.low, p.high) for p in exact}
    if not truth:
        return 1.0
    return len(got & truth) / len(truth)
