"""Sharded scatter-gather: equivalence, QPS scaling, budget skew (BENCH-SHARD).

Measures what K-way sharding buys the serving path, behind the gate
the whole shard layer must clear first:

* **equivalence** -- at every K in {1, 2, 4, 8} x thread workers
  {1, 2} x process workers {1}, a mirror-built shard fleet must answer
  a query batch **bit-identically** to the unsharded ``query_batch``
  on the same plan and seed: same sids, same exact D_S similarities,
  same best-first ordering, same candidate sets (fingerprint-collision
  false positives included).  A run that fails this gate exits
  non-zero regardless of its numbers.
* **scatter-gather QPS vs. unsharded** -- a closed-loop batch driver
  against the unsharded executor and against ``ShardedExecutor`` at
  each K.  Reported per K: measured wall QPS and a K-way-overlap
  *modeled* QPS that replaces the serialized sum of per-shard walls
  with their max (what concurrent shards deliver once the host has
  K free cores -- per-shard walls are measured, not estimated; the
  same convention as BENCH_parallel's LPT model on this 1-core bench
  host).  Full mode gates modeled (or measured, when the host has >= 4
  cores) K=4 process-backend QPS at >= 1.5x the unsharded baseline.
* **serve-layer comparison** -- fixed-duration ``loadgen`` runs against
  ``repro serve`` over the unsharded snapshot and over the K=4 fleet;
  honest wall-clock, reported unconditionally, gated only on a
  multi-core host.
* **allocation skew** (always gated) -- a cluster-partitioned,
  workload-tuned build under a hot single-cluster workload must route
  the largest weight to the hot shard and give it at least as many
  tables as the coldest shard: the Lemma 6 greedy spending the global
  budget where the workload lives.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_shard.py [--smoke] [--out PATH]

Writes ``BENCH_shard.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_shard.json"

RANGE = (0.3, 0.9)
SEED = 11

K_LEVELS = (1, 2, 4, 8)
SMOKE_K_LEVELS = (1, 2, 4)


def build_workload(n_sets: int, n_queries: int, seed: int):
    """Planted clusters -> global dist/plan/index + a mixed query pool."""
    import numpy as np

    from repro.core.distribution import SimilarityDistribution
    from repro.core.index import SetSimilarityIndex
    from repro.core.optimizer import plan_index
    from repro.data.generators import planted_clusters

    per_cluster = 10
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=30,
        universe=6_000,
        mutation_rate=0.2,
        seed=seed,
    )
    dist = SimilarityDistribution.from_sets(
        sets, sample_pairs=4_000, seed=seed
    )
    plan = plan_index(dist, 60, recall_target=0.85, b=4)
    index = SetSimilarityIndex.from_plan(
        sets, plan, dist, k=32, b=4, seed=seed
    )
    rng = np.random.default_rng(seed)
    queries = [
        sets[int(rng.integers(len(sets)))] for _ in range(n_queries * 3 // 4)
    ]
    queries += [
        frozenset(int(x) for x in rng.integers(0, 6_000, size=24))
        for _ in range(n_queries - len(queries))
    ]
    return sets, queries, dist, plan, index


def batches_identical(got, want) -> bool:
    if got.n_queries != want.n_queries:
        return False
    for g, w in zip(got.results, want.results):
        if g.answers != w.answers or g.candidates != w.candidates:
            return False
    return True


def run_equivalence(sets, queries, plan, dist, baseline, workdir, k_levels,
                    smoke):
    """Mirror-built fleets vs. the unsharded batch at every combo."""
    from repro.exec.shard import ShardedExecutor, build_sharded, open_sharded

    combos = []
    for n_shards in k_levels:
        combos.append((n_shards, "thread", 1))
        combos.append((n_shards, "thread", 2))
        if not smoke or n_shards <= 2:
            combos.append((n_shards, "process", 1))
    rows = []
    for n_shards, backend, workers in combos:
        shard_dir = workdir / f"equiv-k{n_shards}"
        if not shard_dir.exists():
            build_sharded(
                sets, shard_dir, n_shards=n_shards, k=32, b=4, seed=SEED,
                plan=plan, dist=dist,
            )
        with ShardedExecutor(
            open_sharded(shard_dir), workers=workers, backend=backend
        ) as executor:
            got = executor.query_batch(queries, *RANGE)
        ok = batches_identical(got, baseline)
        rows.append({
            "n_shards": n_shards,
            "backend": backend,
            "workers": workers,
            "identical": ok,
        })
        status = "bit-identical" if ok else "MISMATCH"
        print(f"  equivalence K={n_shards} {backend} x{workers}: {status}")
    return rows


def run_throughput(snap_dir, queries, workdir, k_levels, repeats, backend):
    """Closed-loop batch driver: unsharded vs. ShardedExecutor per K.

    Two passes per K, each timed per repeat with the **best repeat**
    reported (the standard noise floor on a shared host).  The
    *measured* pass scatters normally (threads interleave on a
    shared-GIL host, so per-shard walls overlap and the parent wall is
    the honest single-host number).  The *modeled* pass times each
    shard's batch **in isolation, serially** -- no interleaving
    inflates it -- and models K-way overlap as ``max(isolated shard
    walls) + measured merge``: what concurrent shards deliver once the
    host has K free cores, built entirely from measured quantities
    (same convention as BENCH_parallel's LPT model).
    """
    from repro.exec.parallel import ParallelExecutor
    from repro.exec.shard import ShardedExecutor, open_sharded

    n_queries = len(queries)
    with ParallelExecutor(snap_dir, workers=1, backend=backend) as executor:
        executor.query_batch(queries[:4], *RANGE)  # warm (spawn, caches)
        base_walls = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            executor.query_batch(queries, *RANGE)
            base_walls.append(time.perf_counter() - t0)
    base_wall = min(base_walls)
    baseline = {
        "backend": backend,
        "workers": 1,
        "repeats": repeats,
        "best_wall_seconds": round(base_wall, 4),
        "qps": round(n_queries / base_wall, 1),
    }
    print(f"  unsharded {backend}: {baseline['qps']} qps")

    rows = []
    for n_shards in k_levels:
        shard_dir = workdir / f"equiv-k{n_shards}"
        with ShardedExecutor(
            open_sharded(shard_dir), workers=1, backend=backend
        ) as executor:
            executor.query_batch(queries[:4], *RANGE)
            walls = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                batch = executor.query_batch(queries, *RANGE)
                walls.append(time.perf_counter() - t0)
                merge = batch.exec_stats["merge_seconds"]
            # Modeled pass: isolated per-shard walls, no interleaving.
            modeled_walls = []
            skews = []
            for _ in range(repeats):
                isolated = []
                for shard_executor in executor._executors.values():
                    t0 = time.perf_counter()
                    shard_executor.query_batch(queries, *RANGE)
                    isolated.append(time.perf_counter() - t0)
                modeled_walls.append(max(isolated) + merge)
                mean = sum(isolated) / len(isolated)
                skews.append(max(isolated) / mean if mean > 0 else 1.0)
        wall = min(walls)
        modeled = min(modeled_walls)
        rows.append({
            "n_shards": n_shards,
            "backend": backend,
            "workers": 1,
            "best_wall_seconds": round(wall, 4),
            "measured_qps": round(n_queries / wall, 1),
            "measured_speedup": round(base_wall / wall, 2),
            "modeled_wall_seconds": round(modeled, 4),
            "modeled_qps": round(n_queries / modeled, 1),
            "modeled_speedup": round(base_wall / modeled, 2),
            "mean_shard_skew": round(sum(skews) / len(skews), 2),
        })
        row = rows[-1]
        print(
            f"  sharded K={n_shards} {backend}: measured {row['measured_qps']}"
            f" qps ({row['measured_speedup']}x), modeled {row['modeled_qps']}"
            f" qps ({row['modeled_speedup']}x)"
        )
    return {"baseline": baseline, "sharded": rows}


def run_serve_comparison(snap_dir, shard_dir, queries, duration, workers):
    """Fixed-duration loadgen against serve over snapshot vs. fleet."""
    from repro.serve import QueryServer, ServeConfig, run_loadgen

    async def drive(target):
        server = QueryServer(target, ServeConfig(port=0, workers=workers))
        await server.start()
        result = await run_loadgen(
            "127.0.0.1", server.port, queries, *RANGE,
            connections=8, total=None, duration=duration,
            strategy="index", pipeline=2,
        )
        server.request_drain()
        await server.drain()
        summary = result.summary()
        return {
            "qps": summary["qps"],
            "p50_ms": summary["latency_ms"]["p50"],
            "p99_ms": summary["latency_ms"]["p99"],
            "n_ok": summary["n_ok"],
            "duration_seconds": duration,
        }

    unsharded = asyncio.run(drive(snap_dir))
    sharded = asyncio.run(drive(shard_dir))
    print(
        f"  serve {duration:.1f}s: unsharded {unsharded['qps']} qps "
        f"p99 {unsharded['p99_ms']}ms | sharded {sharded['qps']} qps "
        f"p99 {sharded['p99_ms']}ms"
    )
    return {"unsharded": unsharded, "sharded": sharded}


def run_allocation_skew(sets, workdir, n_shards=4, budget=60):
    """Cluster partition + hot workload: does the budget follow heat?"""
    from repro.exec.shard import build_sharded

    hot_queries = [sets[0]] * 24  # hammer one planted cluster
    manifest = build_sharded(
        sets, workdir / "tuned", n_shards=n_shards, partition="cluster",
        tune="workload", budget=budget, recall_target=0.85, k=32, b=4,
        seed=SEED, sample_pairs=4_000, workload=hot_queries,
        workload_range=RANGE,
    )
    entries = manifest["shards"]
    hot = max(entries, key=lambda e: e["weight"])
    cold = min(entries, key=lambda e: e["weight"])
    shifted = (
        hot["weight"] > cold["weight"] and hot["tables"] >= cold["tables"]
    )
    print(
        f"  allocation: hot {hot['dir']} weight {hot['weight']:.3f} -> "
        f"{hot['tables']} tables; cold {cold['dir']} weight "
        f"{cold['weight']:.3f} -> {cold['tables']} tables "
        f"({'shifted' if shifted else 'NOT SHIFTED'})"
    )
    return {
        "partition": "cluster",
        "tune": "workload",
        "budget": budget,
        "n_shards": n_shards,
        "total_tables": sum(e["tables"] for e in entries),
        "shards": [
            {"dir": e["dir"], "n_sets": e["n_sets"],
             "weight": e["weight"], "tables": e["tables"]}
            for e in entries
        ],
        "hot_shard": hot["dir"],
        "cold_shard": cold["dir"],
        "budget_shifted_to_hot": shifted,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, no full-mode gates")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    from repro.exec.parallel import ParallelExecutor

    smoke = args.smoke
    n_sets = 300 if smoke else 3_000
    n_queries = 16 if smoke else 48
    repeats = 2 if smoke else 5
    k_levels = SMOKE_K_LEVELS if smoke else K_LEVELS
    duration = 1.0 if smoke else 2.5
    cpu_count = os.cpu_count() or 1

    print(f"workload: {n_sets} sets, {n_queries} queries, "
          f"range {RANGE}, {'smoke' if smoke else 'full'} mode")
    sets, queries, dist, plan, index = build_workload(n_sets, n_queries, SEED)
    baseline_batch = ParallelExecutor(index.freeze(), workers=1).query_batch(
        queries, *RANGE
    )

    with tempfile.TemporaryDirectory(prefix="bench_shard-") as td:
        workdir = Path(td)
        print("equivalence gate:")
        equivalence = run_equivalence(
            sets, queries, plan, dist, baseline_batch, workdir, k_levels,
            smoke,
        )
        snap_dir = workdir / "snapdir"
        index.save_snapshot(snap_dir)
        print("throughput (direct executors):")
        bench_backend = "thread" if smoke else "process"
        throughput = run_throughput(
            snap_dir, queries, workdir, k_levels, repeats, bench_backend
        )
        print("serve-layer comparison (fixed duration):")
        serve_k = 4 if 4 in k_levels else max(k_levels)
        serve = run_serve_comparison(
            snap_dir, workdir / f"equiv-k{serve_k}", queries, duration,
            workers=2,
        )
        print("allocation skew:")
        allocation = run_allocation_skew(
            sets, workdir, n_shards=4, budget=60
        )

    equivalence_ok = all(r["identical"] for r in equivalence)
    k4 = next(
        (r for r in throughput["sharded"] if r["n_shards"] == serve_k), None
    )
    multi_core = cpu_count >= 4
    if multi_core:
        k4_speedup = k4["measured_speedup"] if k4 else 0.0
        speedup_basis = "measured"
    else:
        k4_speedup = k4["modeled_speedup"] if k4 else 0.0
        speedup_basis = "modeled"
    gates = {
        "equivalence_ok": equivalence_ok,
        "budget_shifted_to_hot": allocation["budget_shifted_to_hot"],
        "k4_backend": bench_backend,
        "k4_speedup": k4_speedup,
        "k4_speedup_basis": speedup_basis,
        "k4_speedup_ok": k4_speedup >= 1.5,
    }

    report = {
        "experiment": "BENCH-SHARD",
        "workload": {
            "generator": "planted_clusters",
            "n_sets": n_sets,
            "n_queries": n_queries,
            "repeats": repeats,
            "budget": 60,
            "k": 32,
            "seed": SEED,
            "range": list(RANGE),
            "mode": "smoke" if smoke else "full",
        },
        "host": {
            "cpu_count": cpu_count,
            "single_core_host": cpu_count == 1,
        },
        "metric_note": (
            "equivalence compares answers (sids, exact similarities, "
            "best-first ordering) and candidate sets against the unsharded "
            "query_batch; modeled_qps = max(per-shard walls measured in "
            "isolation, serially) + measured merge time -- the "
            "K-way-concurrency counterpart of BENCH_parallel's LPT model, "
            "built entirely from measured quantities; measured_qps is "
            "honest wall clock and tracks the model only when the host "
            "has >= K free cores; all timings are best-of-repeats"
        ),
        "equivalence": equivalence,
        "throughput": throughput,
        "serve": serve,
        "allocation": allocation,
        "gates": gates,
    }
    args.out.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.out}")

    if not equivalence_ok:
        raise SystemExit("FAIL: sharded answers are not bit-identical")
    if not allocation["budget_shifted_to_hot"]:
        raise SystemExit("FAIL: allocator did not shift budget to hot shard")
    if not smoke and not gates["k4_speedup_ok"]:
        raise SystemExit(
            f"FAIL: K={serve_k} {bench_backend} {speedup_basis} speedup "
            f"{k4_speedup}x < 1.5x"
        )
    print("gates pass")


if __name__ == "__main__":
    main()
