"""I/O cost model and access counters.

Section 6 of the paper estimates when the index beats a sequential scan
using the ratio ``rtn = ran / seq ~= 8``: one random page read costs
about eight sequential page reads.  The reproduction makes that model
explicit.  Every storage component reports page touches to an
:class:`IOCostModel`; simulated response time is then

    time = seq_reads * seq_cost + random_reads * random_cost
         + cpu_ops * cpu_cost

Writes are tracked too (the index supports dynamic updates) but, as in
the paper's read-only experiments, they do not enter query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """A snapshot of accumulated access counts."""

    sequential_reads: int = 0
    random_reads: int = 0
    page_writes: int = 0
    cpu_ops: int = 0

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.sequential_reads + other.sequential_reads,
            self.random_reads + other.random_reads,
            self.page_writes + other.page_writes,
            self.cpu_ops + other.cpu_ops,
        )

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.sequential_reads - other.sequential_reads,
            self.random_reads - other.random_reads,
            self.page_writes - other.page_writes,
            self.cpu_ops - other.cpu_ops,
        )

    @property
    def total_reads(self) -> int:
        """All page reads, sequential and random."""
        return self.sequential_reads + self.random_reads

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form (for traces, EXPLAIN JSON, bench output)."""
        return {
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "page_writes": self.page_writes,
            "cpu_ops": self.cpu_ops,
        }


@dataclass
class IOCostModel:
    """Counts page accesses and converts them to simulated time.

    Parameters
    ----------
    seq_cost:
        Cost of one sequential page read (the time unit; default 1.0).
    random_cost:
        Cost of one random page read; the paper uses ``8 * seq_cost``.
    cpu_cost:
        Cost of one accounted CPU operation (a per-element similarity
        computation step), in the same unit.
    """

    seq_cost: float = 1.0
    random_cost: float = 8.0
    cpu_cost: float = 0.002
    stats: IOStats = field(default_factory=IOStats)

    def read_sequential(self, pages: int = 1) -> None:
        """Record sequential page reads."""
        self.stats.sequential_reads += pages

    def read_random(self, pages: int = 1) -> None:
        """Record random page reads."""
        self.stats.random_reads += pages

    def write(self, pages: int = 1) -> None:
        """Record page writes (not counted toward query time)."""
        self.stats.page_writes += pages

    def cpu(self, ops: int = 1) -> None:
        """Record accounted CPU operations."""
        self.stats.cpu_ops += ops

    def snapshot(self) -> IOStats:
        """Copy of the current counters (for before/after deltas)."""
        s = self.stats
        return IOStats(s.sequential_reads, s.random_reads, s.page_writes, s.cpu_ops)

    def reset(self) -> None:
        """Zero all counters."""
        self.stats = IOStats()

    def io_time(self, stats: IOStats | None = None) -> float:
        """Simulated I/O time of ``stats`` (default: accumulated total)."""
        s = self.stats if stats is None else stats
        return s.sequential_reads * self.seq_cost + s.random_reads * self.random_cost

    def cpu_time(self, stats: IOStats | None = None) -> float:
        """Simulated CPU time of ``stats`` (default: accumulated total)."""
        s = self.stats if stats is None else stats
        return s.cpu_ops * self.cpu_cost

    def total_time(self, stats: IOStats | None = None) -> float:
        """Simulated response time: I/O plus CPU."""
        return self.io_time(stats) + self.cpu_time(stats)
