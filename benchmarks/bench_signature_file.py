"""ABL-SIGFILE -- the Section 7 related-work comparison.

Signature files answer set queries by scanning an encoded file in its
entirety and "cannot provide any form of guarantee on their accuracy".
This bench pits the superimposed-coding similarity screen against the
paper's index on the same workload:

* the index's candidate cost falls with selectivity (probe + fetches);
  the signature file always pays the full scan;
* the screen's accuracy drifts with signature saturation, while the
  index's recall is a designed-for quantity.
"""

import numpy as np
import pytest

from repro.baselines.signature_file import SignatureFile
from repro.core.index import SetSimilarityIndex
from repro.core.similarity import jaccard
from repro.data.weblog import make_set1
from repro.eval.report import format_table

THRESHOLD = 0.4


def test_signature_file_comparison(benchmark, emit, scale):
    sets = make_set1(min(scale.n_sets, 800), seed=61)
    truth = []
    queries = list(range(0, len(sets), len(sets) // 25))
    for qi in queries:
        q = sets[qi]
        truth.append({i for i, s in enumerate(sets) if jaccard(s, q) >= THRESHOLD})

    avg_set_pages = float(np.mean([max(1, -(-len(s) // 64)) for s in sets]))

    def sig_row(label, f, w):
        sig_file = SignatureFile(f=f, w=w)
        sig_file.insert_many(sets)
        recalls, precisions, costs = [], [], []
        for qi, expected in zip(queries, truth):
            got = set(sig_file.similarity_screen(sets[qi], THRESHOLD))
            hits = len(got & expected)
            recalls.append(hits / len(expected) if expected else 1.0)
            precisions.append(hits / len(got) if got else 1.0)
            # Fair cost: scan the signature file sequentially, then
            # fetch + verify every screen hit like the index must.
            costs.append(sig_file.n_pages + len(got) * (8.0 + avg_set_pages))
        return [label, float(np.mean(recalls)), float(np.mean(precisions)), float(np.mean(costs))]

    def run():
        index = SetSimilarityIndex.build(
            sets, budget=200, recall_target=0.85, k=scale.k, seed=6,
            sample_pairs=40_000,
        )
        recalls, precisions, costs = [], [], []
        for qi, expected in zip(queries, truth):
            result = index.query_above(sets[qi], THRESHOLD)
            got = result.answer_sids
            hits = len(got & expected)
            recalls.append(hits / len(expected) if expected else 1.0)
            precisions.append(hits / len(got) if got else 1.0)
            costs.append(result.total_time)
        rows = [
            [
                "filter index",
                float(np.mean(recalls)),
                float(np.mean(precisions)),
                float(np.mean(costs)),
            ],
            sig_row("sig file f=512 w=4", 512, 4),
            sig_row("sig file f=128 w=8 (saturated)", 128, 8),
        ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ABL-SIGFILE",
        format_table(
            ["method", "avg recall", "avg screen precision", "avg simulated cost"], rows
        )
        + "\n(signature-file hits are unverified screen output; index answers are exact)",
    )
    index_row, roomy, saturated = rows
    # The index's answers are exact (precision 1 after verification).
    assert index_row[2] == pytest.approx(1.0)
    # A saturated signature file loses its screen precision -- the
    # "no accuracy guarantee" critique: nothing in the structure warns
    # that f was too small for these sets.
    assert saturated[2] < roomy[2]
