"""Saving and loading built indexes.

Building an index costs a full pass over the collection plus the
optimization loop; a production deployment builds once and serves many
sessions.  This module persists a built
:class:`~repro.core.index.SetSimilarityIndex` -- embedder parameters,
plan, filter structures, simulated pages, vectors and the set store --
to a single file.

Format: a magic header + format version, then a pickle of the index
object (everything inside is plain Python/numpy state).  The version is
checked on load so stale files fail loudly rather than subtly.
"""

from __future__ import annotations

import pickle
from pathlib import Path

MAGIC = b"REPRO-SSI"
#: Bumped to 2 when the key fingerprint changed from blake2b to the
#: splitmix64 word fold: fingerprints are baked into every stored page,
#: so version-1 files must fail loudly rather than probe-miss silently.
FORMAT_VERSION = 2


class PersistenceError(RuntimeError):
    """Raised when a file is not a valid saved index."""


def save_index(index, path) -> None:
    """Serialize a built index to ``path``."""
    path = Path(path)
    payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(FORMAT_VERSION.to_bytes(2, "little"))
        f.write(payload)


def load_index(path):
    """Load an index previously written by :func:`save_index`.

    Only load files you trust -- the payload is a pickle.
    """
    path = Path(path)
    with open(path, "rb") as f:
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise PersistenceError(f"{path} is not a saved index (bad magic)")
        version = int.from_bytes(f.read(2), "little")
        if version != FORMAT_VERSION:
            raise PersistenceError(
                f"{path} has format version {version}; this build reads {FORMAT_VERSION}"
            )
        return pickle.load(f)
