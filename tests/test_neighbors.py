"""Tests for nearest/furthest neighbour retrieval."""

import pytest

from repro.core.index import SetSimilarityIndex
from repro.core.similarity import jaccard
from repro.mining.neighbors import furthest_neighbor, nearest_neighbor


@pytest.fixture(scope="module")
def nn_index(clustered_sets):
    index = SetSimilarityIndex.build(
        clustered_sets, budget=60, recall_target=0.8, k=48, b=6, seed=15
    )
    return clustered_sets, index


class TestNearestNeighbor:
    def test_self_is_nearest(self, nn_index):
        sets, index = nn_index
        result = nearest_neighbor(index, sets[0])
        assert result is not None
        sid, similarity = result
        assert similarity == 1.0

    def test_excluding_self_finds_cluster_mate(self, nn_index):
        sets, index = nn_index
        result = nearest_neighbor(index, sets[0], include_self=False)
        assert result is not None
        sid, similarity = result
        assert jaccard(sets[sid], sets[0]) == pytest.approx(similarity)
        assert similarity > 0.3  # cluster mates are ~0.55 similar

    def test_floor_blocks_weak_matches(self, nn_index):
        _, index = nn_index
        foreign = frozenset(range(10**6, 10**6 + 25))
        assert nearest_neighbor(index, foreign, floor=0.5) is None

    def test_nearest_is_truly_near_optimal(self, nn_index):
        """The returned neighbour's similarity is close to the true
        maximum (the index may miss, but not by much on clusters)."""
        sets, index = nn_index
        query = sets[7]
        result = nearest_neighbor(index, query, include_self=False)
        assert result is not None
        best_true = max(
            jaccard(s, query) for i, s in enumerate(sets) if s != query
        )
        assert result[1] >= best_true - 0.25


class TestFurthestNeighbor:
    def test_returns_dissimilar_set(self, nn_index):
        sets, index = nn_index
        result = furthest_neighbor(index, sets[0])
        assert result is not None
        sid, similarity = result
        assert similarity == pytest.approx(jaccard(sets[sid], sets[0]))
        # Planted clusters are mutually near-disjoint: the furthest
        # neighbour must be essentially dissimilar.
        assert similarity < 0.2

    def test_empty_index(self):
        index = SetSimilarityIndex.build([], budget=10, k=8)
        assert furthest_neighbor(index, {1, 2}) is None

    def test_all_identical_collection(self):
        sets = [frozenset({1, 2, 3})] * 5
        index = SetSimilarityIndex.build(sets, budget=10, k=16, seed=1)
        result = furthest_neighbor(index, {1, 2, 3})
        assert result is not None
        assert result[1] == 1.0  # nothing dissimilar exists

    def test_fallback_terminates(self, nn_index):
        """Even a query similar to everything gets an answer via the
        final [0, 1] fallback."""
        sets, index = nn_index
        union_like = frozenset().union(*sets[:20])
        assert furthest_neighbor(index, union_like) is not None
