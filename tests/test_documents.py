"""Tests for the shingled-document workload generator."""

import numpy as np
import pytest

from repro.core.similarity import jaccard
from repro.data.documents import make_document_collection, shingles


class TestShingles:
    def test_basic(self):
        assert shingles([1, 2, 3, 4], width=2) == {(1, 2), (2, 3), (3, 4)}

    def test_width_three(self):
        assert shingles([1, 2, 3, 4], width=3) == {(1, 2, 3), (2, 3, 4)}

    def test_short_document(self):
        assert shingles([7], width=3) == {(7,)}

    def test_repeated_tokens_collapse(self):
        assert shingles([5, 5, 5, 5], width=2) == {(5, 5)}

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            shingles([1, 2], width=0)

    def test_identical_documents_identical_shingles(self):
        assert shingles([1, 2, 3], 2) == shingles([1, 2, 3], 2)


class TestDocumentCollection:
    def test_counts_and_nonempty(self):
        docs = make_document_collection(n_documents=50, seed=1)
        assert len(docs) == 50
        assert all(docs)

    def test_deterministic(self):
        a = make_document_collection(n_documents=20, seed=2)
        b = make_document_collection(n_documents=20, seed=2)
        assert a == b

    def test_near_duplicates_planted(self):
        docs = make_document_collection(
            n_documents=80, near_duplicate_rate=0.3, seed=3
        )
        best = 0.0
        for i in range(len(docs)):
            for j in range(i + 1, len(docs)):
                best = max(best, jaccard(docs[i], docs[j]))
                if best > 0.8:
                    break
        assert best > 0.8  # light edits leave most shingles shared

    def test_no_duplicates_without_rate(self):
        docs = make_document_collection(
            n_documents=40, near_duplicate_rate=0.0, n_topics=8, seed=4
        )
        sims = [
            jaccard(docs[i], docs[j])
            for i in range(0, 40, 5)
            for j in range(i + 1, 40, 7)
        ]
        assert max(sims) < 0.8

    def test_topical_similarity_exceeds_cross_topic(self):
        docs = make_document_collection(
            n_documents=60, n_topics=2, near_duplicate_rate=0.0, seed=5
        )
        # With only 2 topics, some pairs share a topic: their shingle
        # overlap should, on average, beat the global average.
        rng = np.random.default_rng(0)
        sims = []
        for _ in range(300):
            i, j = rng.choice(len(docs), size=2, replace=False)
            sims.append(jaccard(docs[i], docs[j]))
        sims = np.array(sims)
        assert sims.max() > sims.mean()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_document_collection(n_documents=0)
        with pytest.raises(ValueError):
            make_document_collection(near_duplicate_rate=1.0)

    def test_indexable_end_to_end(self):
        """Shingle sets (tuples as elements) flow through the index."""
        from repro.core.index import SetSimilarityIndex

        docs = make_document_collection(
            n_documents=40, near_duplicate_rate=0.2, seed=6
        )
        index = SetSimilarityIndex.build(docs, budget=30, recall_target=0.8, k=24, seed=7)
        result = index.query_above(docs[0], 0.9)
        assert 0 in result.answer_sids
