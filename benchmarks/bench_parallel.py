"""Parallel executor + columnar verification scaling (BENCH-PARALLEL).

Quantifies what PR 3's query engine buys on a batch-64 planted-cluster
workload (the same explicitly planned setting as BENCH-BATCH):

* **columnar verification** -- wall-clock of the vectorized
  sorted-hash intersection kernels against the legacy per-candidate
  ``frozenset`` loop (``columnar_verify = False``), sequential path,
  identical answers and simulated accounting;
* **thread scaling** -- wall-clock of ``ParallelExecutor`` over a
  frozen snapshot at 1/2/4/8 workers, plus a **load-balance model**:
  per-task busy times measured at ``workers=1`` are LPT-packed onto
  ``W`` lanes to get the modeled makespan.  The model is what the
  sharded scheduler can deliver given its task granularity; on hosts
  where ``os.cpu_count() == 1`` (CI containers) -- or wherever the GIL
  serializes the numpy-light stages -- measured wall clock cannot
  follow it, so the JSON flags ``single_core_host`` and the gates bind
  on the modeled speedup plus bit-equality of results and accounting.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke] [--out PATH]

Writes ``BENCH_parallel.json`` at the repo root: per range the
sequential/columnar/legacy wall seconds, per worker count the measured
wall seconds, modeled LPT makespan and speedup, and the equivalence
verdict (answers, pages, simulated time vs sequential).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4, 8)

#: One probe-dominated range and one verification-heavy range.
RANGES = [(0.5, 1.0), (0.2, 0.8)]


def _pages(delta) -> int:
    return delta.random_reads + delta.sequential_reads


def build_workload(n_sets: int, budget: int, k: int, seed: int):
    """Planted-cluster collection + explicitly planned index (as in
    BENCH-BATCH: cuts 0.2/0.5/0.8 keep the filters selective)."""
    from repro.core.index import SetSimilarityIndex
    from repro.core.optimizer import (
        IndexPlan,
        SimilarityDistribution,
        greedy_allocate,
        place_filters,
    )
    from repro.data.generators import planted_clusters

    per_cluster = 20
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=40,
        universe=20_000,
        mutation_rate=0.15,
        seed=seed,
    )
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=50_000, seed=seed)
    cuts = [0.2, 0.5, 0.8]
    filters = place_filters(cuts, delta=0.2)
    greedy_allocate(filters, budget, dist, 6)
    plan = IndexPlan(
        cut_points=cuts,
        delta=0.2,
        filters=filters,
        expected_recall=0.9,
        expected_precision=0.5,
        b=6,
        met_target=True,
    )
    index = SetSimilarityIndex.from_plan(sets, plan, dist, k=k, b=6, seed=seed)
    return sets, index


def lpt_makespan(task_seconds: list[float], workers: int) -> float:
    """Longest-processing-time-first packing of tasks onto lanes.

    The classic 4/3-approximation; with the engine's fine-grained
    stage sharding it is within a few percent of optimal and is the
    makespan a ``workers``-wide pool would achieve on these tasks.
    """
    if not task_seconds or workers <= 1:
        return sum(task_seconds)
    lanes = [0.0] * workers
    for seconds in sorted(task_seconds, reverse=True):
        lanes[lanes.index(min(lanes))] += seconds
    return max(lanes)


def _batch_equal(a, b) -> bool:
    """Answers, candidates and every simulated cost, bit for bit."""
    return (
        a.io == b.io
        and a.io_time == b.io_time
        and a.cpu_time == b.cpu_time
        and a.pages_saved == b.pages_saved
        and a.fetches_saved == b.fetches_saved
        and all(
            ga.answers == gb.answers and ga.candidates == gb.candidates
            for ga, gb in zip(a.results, b.results)
        )
    )


def run_bench(
    n_sets: int = 3000,
    batch_size: int = 64,
    budget: int = 200,
    k: int = 100,
    seed: int = 11,
    repeats: int = 3,
) -> dict:
    """Measure columnar + parallel scaling; return the JSON payload."""
    from repro.exec import ParallelExecutor

    sets, index = build_workload(n_sets, budget, k, seed)
    queries = [sets[i % len(sets)] for i in range(batch_size)]

    rows = []
    for lo, hi in RANGES:
        # -- columnar vs legacy per-candidate loop (sequential path) --
        sequential = index.query_batch(queries, lo, hi)  # warm + reference
        columnar_secs, legacy_secs = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            index.query_batch(queries, lo, hi)
            columnar_secs.append(time.perf_counter() - t0)
        index.columnar_verify = False
        try:
            legacy = index.query_batch(queries, lo, hi)  # warm + reference
            for _ in range(repeats):
                t0 = time.perf_counter()
                index.query_batch(queries, lo, hi)
                legacy_secs.append(time.perf_counter() - t0)
        finally:
            index.columnar_verify = True
        columnar_s, legacy_s = min(columnar_secs), min(legacy_secs)

        # -- thread scaling over a frozen snapshot --
        snapshot = index.freeze()
        worker_rows = []
        base_busy: list[float] = []
        try:
            for workers in WORKER_COUNTS:
                with ParallelExecutor(snapshot, workers=workers) as ex:
                    ex.query_batch(queries, lo, hi)  # warm the pool
                    best_wall, best_stats, batch = None, None, None
                    for _ in range(repeats):
                        t0 = time.perf_counter()
                        batch = ex.query_batch(queries, lo, hi)
                        wall = time.perf_counter() - t0
                        if best_wall is None or wall < best_wall:
                            best_wall, best_stats = wall, batch.exec_stats
                task_secs = [t["seconds"] for t in best_stats["tasks"]]
                if workers == 1:
                    base_busy = task_secs
                modeled = lpt_makespan(base_busy or task_secs, workers)
                worker_rows.append({
                    "workers": workers,
                    "wall_seconds": round(best_wall, 4),
                    "busy_seconds": round(sum(task_secs), 4),
                    "n_tasks": len(task_secs),
                    "modeled_makespan": round(modeled, 4),
                    "equivalent": _batch_equal(batch, sequential),
                })
        finally:
            index.thaw()
        base = worker_rows[0]
        for row in worker_rows:
            row["measured_speedup"] = round(
                base["wall_seconds"] / row["wall_seconds"], 2
            )
            row["modeled_speedup"] = round(
                base["modeled_makespan"] / row["modeled_makespan"], 2
            )

        rows.append({
            "sigma_low": lo,
            "sigma_high": hi,
            "batch_size": batch_size,
            "columnar_seconds": round(columnar_s, 4),
            "legacy_loop_seconds": round(legacy_s, 4),
            "columnar_speedup": round(legacy_s / columnar_s, 2),
            "columnar_equivalent": _batch_equal(legacy, sequential),
            "workers": worker_rows,
        })

    return {
        "experiment": "BENCH-PARALLEL",
        "workload": {
            "generator": "planted_clusters",
            "plan": "explicit cuts [0.2, 0.5, 0.8], delta 0.2",
            "n_sets": n_sets,
            "batch_size": batch_size,
            "budget": budget,
            "k": k,
            "seed": seed,
            "ranges": RANGES,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "single_core_host": (os.cpu_count() or 1) <= 1,
        },
        "metric_note": (
            "columnar_speedup is measured wall clock, sequential path; "
            "modeled_speedup LPT-packs the per-task busy times measured "
            "at workers=1 onto W lanes (what the sharded scheduler "
            "delivers given its task granularity); measured_speedup is "
            "honest wall clock and tracks the model only when the host "
            "has free cores and the stages release the GIL"
        ),
        "rows": rows,
    }


def format_table(payload: dict) -> str:
    lines = []
    for r in payload["rows"]:
        lines.append(
            f"range [{r['sigma_low']:.2f},{r['sigma_high']:.2f}] "
            f"batch={r['batch_size']}: columnar {r['columnar_seconds']}s "
            f"vs loop {r['legacy_loop_seconds']}s "
            f"({r['columnar_speedup']}x)"
        )
        header = (
            f"  {'workers':>8} {'wall(s)':>9} {'busy(s)':>9} "
            f"{'model(s)':>9} {'model-spd':>10} {'meas-spd':>9} {'equal':>6}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for w in r["workers"]:
            lines.append(
                f"  {w['workers']:>8} {w['wall_seconds']:>9} "
                f"{w['busy_seconds']:>9} {w['modeled_makespan']:>9} "
                f"{w['modeled_speedup']:>9}x {w['measured_speedup']:>8}x "
                f"{'yes' if w['equivalent'] else 'NO':>6}"
            )
    return "\n".join(lines)


def check(payload: dict, smoke: bool = False) -> list[str]:
    """The bench's own acceptance gates; returns failure messages."""
    failures = []
    for r in payload["rows"]:
        where = f"range=[{r['sigma_low']},{r['sigma_high']}]"
        if not r["columnar_equivalent"]:
            failures.append(f"legacy loop diverged from columnar at {where}")
        for w in r["workers"]:
            if not w["equivalent"]:
                failures.append(
                    f"parallel diverged from sequential at {where} "
                    f"workers={w['workers']}"
                )
        if smoke:
            continue  # smoke checks the machinery, not the numbers
        if r["columnar_speedup"] < 1.0:
            failures.append(
                f"columnar ({r['columnar_seconds']}s) did not beat the "
                f"per-candidate loop ({r['legacy_loop_seconds']}s) at {where}"
            )
        eight = next(w for w in r["workers"] if w["workers"] == 8)
        if eight["modeled_speedup"] < 2.0:
            failures.append(
                f"modeled speedup {eight['modeled_speedup']}x < 2x at 8 "
                f"workers, {where}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: checks equivalence, not the numbers",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        payload = run_bench(
            n_sets=400, batch_size=16, budget=80, k=32, repeats=1,
        )
        payload["smoke"] = True
    else:
        payload = run_bench()
    print(format_table(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = check(payload, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
