"""Tests for the ASCII figure renderer."""

import math

import pytest

from repro.eval.harness import BucketSummary
from repro.eval.plots import ascii_bars, fig6_ascii, fig7_ascii


class TestAsciiBars:
    def test_basic_rendering(self):
        out = ascii_bars(["a", "b"], {"x": [1.0, 0.5]})
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 2
        assert lines[0].count("#") == 40  # full-scale bar
        assert lines[1].count("#") == 20

    def test_multiple_series_grouped(self):
        out = ascii_bars(["g"], {"p": [0.4], "r": [0.8]})
        assert "p" in out and "r" in out
        assert "0.400" in out and "0.800" in out

    def test_nan_renders_as_empty(self):
        out = ascii_bars(["g"], {"x": [float("nan")]})
        assert "(no queries)" in out

    def test_zero_peak(self):
        out = ascii_bars(["g"], {"x": [0.0]})
        assert "#" not in out

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            ascii_bars(["a", "b"], {"x": [1.0]})

    def test_validates_width(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], {"x": [1.0]}, width=0)

    def test_custom_format(self):
        out = ascii_bars(["a"], {"x": [1234.0]}, fmt="{:,.0f}")
        assert "1,234" in out


def _summary(label, recall, precision, scan=100.0, index=50.0):
    return BucketSummary(
        label=label,
        n_queries=10,
        recall=recall,
        precision=precision,
        index_io_time=index * 0.9,
        index_cpu_time=index * 0.1,
        scan_io_time=scan * 0.8,
        scan_cpu_time=scan * 0.2,
    )


class TestFigureRenderers:
    def test_fig6(self):
        out = fig6_ascii([_summary("0-0.5%", 0.9, 0.4), _summary("25-35%", 0.95, 0.1)])
        assert "precision" in out and "recall" in out
        assert "0-0.5%" in out and "25-35%" in out

    def test_fig7(self):
        out = fig7_ascii([_summary("0-0.5%", 0.9, 0.4, scan=1000.0, index=300.0)])
        assert "scan" in out and "index" in out
        assert "1,000" in out

    def test_fig6_handles_empty_bucket(self):
        empty = BucketSummary("5-10%", 0, *([math.nan] * 6))
        out = fig6_ascii([_summary("0-0.5%", 0.9, 0.4), empty])
        assert "(no queries)" in out
