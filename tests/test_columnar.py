"""Columnar exact-verification kernels (:mod:`repro.exec.columnar`).

The kernels replace the per-candidate Python loop with vectorized
sorted-hash intersection.  The contract is *bit identity*: for any
sets, ``jaccard_values`` over CSR hash arrays equals
:func:`repro.core.similarity.jaccard` float for float -- including the
empty-vs-empty convention -- and the index produces the same answers
with ``columnar_verify`` on or off.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import jaccard
from repro.exec.columnar import (
    build_csr,
    element_hash,
    gather_csr,
    hash_set,
    intersect_counts,
    jaccard_values,
)

SETS = st.frozensets(
    st.one_of(st.integers(-50, 50), st.text(max_size=4)), max_size=20
)


class TestHashing:
    def test_element_hash_deterministic_and_typed(self):
        assert element_hash("a") == element_hash("a")
        # Distinct set elements get distinct hashes...
        values = {element_hash(v) for v in (1, "1", b"1", (1,), 2)}
        assert len(values) == 5
        # ...but equal-comparing builtin numerics are ONE set element
        # (frozenset({1}) == frozenset({1.0})), so they share a hash.
        assert (
            element_hash(1) == element_hash(1.0)
            == element_hash(True) == element_hash(1 + 0j)
        )
        assert element_hash(0.5) != element_hash(1)
        assert element_hash(float("nan")) == element_hash(float("nan"))

    def test_hash_set_sorted_unique(self):
        arr, collided = hash_set(frozenset({"a", "b", "c", "d"}))
        assert arr.dtype == np.uint64
        assert np.all(arr[1:] > arr[:-1])
        assert not collided

    def test_hash_set_empty(self):
        arr, collided = hash_set(frozenset())
        assert len(arr) == 0 and not collided

    def test_collision_flag(self, monkeypatch):
        """Two distinct elements forced onto one hash trip the flag."""
        monkeypatch.setattr(
            "repro.exec.columnar.element_hash", lambda e: 42
        )
        _, collided = hash_set(frozenset({"x", "y"}))
        assert collided
        _, collided = hash_set(frozenset({"x"}))
        assert not collided


class TestCSR:
    def test_build_and_gather_roundtrip(self):
        arrays = [
            hash_set(s)[0]
            for s in (frozenset({1, 2, 3}), frozenset(), frozenset({9}))
        ]
        indptr, data = build_csr(arrays)
        assert list(indptr) == [0, 3, 3, 4]
        for i, arr in enumerate(arrays):
            assert np.array_equal(data[indptr[i]:indptr[i + 1]], arr)
        # Gather rows out of order, with repeats and empty rows.
        rows = np.array([2, 0, 1, 0])
        sub_indptr, sub_data = gather_csr(indptr, data, rows)
        for j, row in enumerate(rows):
            assert np.array_equal(
                sub_data[sub_indptr[j]:sub_indptr[j + 1]], arrays[row]
            )

    def test_empty_inputs(self):
        indptr, data = build_csr([])
        assert list(indptr) == [0] and len(data) == 0
        sub_indptr, sub_data = gather_csr(
            indptr, data, np.empty(0, dtype=np.int64)
        )
        assert list(sub_indptr) == [0] and len(sub_data) == 0


class TestIntersectCounts:
    def test_counts_match_set_intersection(self):
        sets = [
            frozenset({1, 2, 3}),
            frozenset(),
            frozenset({3, 4, 5, 6}),
            frozenset({7}),
        ]
        query = frozenset({2, 3, 7})
        indptr, data = build_csr([hash_set(s)[0] for s in sets])
        counts = intersect_counts(hash_set(query)[0], indptr, data)
        assert list(counts) == [len(s & query) for s in sets]

    def test_empty_segments_count_zero(self):
        """Empty CSR rows must produce 0 (the ``reduceat`` trap)."""
        indptr, data = build_csr(
            [np.empty(0, np.uint64), hash_set(frozenset({1}))[0],
             np.empty(0, np.uint64)]
        )
        counts = intersect_counts(hash_set(frozenset({1, 2}))[0], indptr, data)
        assert list(counts) == [0, 1, 0]

    def test_empty_query_or_data(self):
        indptr, data = build_csr([hash_set(frozenset({1, 2}))[0]])
        assert list(intersect_counts(np.empty(0, np.uint64), indptr, data)) == [0]
        empty_indptr, empty_data = build_csr([np.empty(0, np.uint64)])
        assert list(
            intersect_counts(hash_set(frozenset({1}))[0], empty_indptr, empty_data)
        ) == [0]


class TestJaccardValues:
    def test_empty_vs_empty_is_one(self):
        values = jaccard_values(0, np.array([0]), np.array([0]))
        assert values[0] == 1.0 == jaccard(frozenset(), frozenset())

    def test_empty_vs_nonempty_is_zero(self):
        values = jaccard_values(0, np.array([3]), np.array([0]))
        assert values[0] == 0.0 == jaccard(frozenset(), frozenset({1, 2, 3}))

    @given(st.lists(SETS, max_size=8), SETS)
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_scalar_jaccard(self, sets, query):
        """Property: the full columnar pipeline (hash -> CSR ->
        intersect -> jaccard) equals the scalar path float for float."""
        arrays = []
        for s in sets:
            arr, collided = hash_set(s)
            assert not collided  # blake2b over tiny domains
            arrays.append(arr)
        qarr, collided = hash_set(query)
        assert not collided
        indptr, data = build_csr(arrays)
        inter = intersect_counts(qarr, indptr, data)
        sizes = np.fromiter((len(s) for s in sets), np.int64, count=len(sets))
        values = jaccard_values(len(query), sizes, inter)
        for i, s in enumerate(sets):
            assert values[i] == jaccard(query, s)  # bitwise ==


class TestIndexEquivalence:
    """``columnar_verify`` flips implementation, never observable output."""

    @pytest.fixture(scope="class")
    def index(self):
        from repro.core.index import SetSimilarityIndex
        from repro.data.generators import planted_clusters

        sets = planted_clusters(
            n_clusters=5, per_cluster=6, base_size=18, universe=900,
            mutation_rate=0.25, seed=13,
        )
        return SetSimilarityIndex.build(
            sets, budget=30, recall_target=0.8, k=20, b=4, seed=13,
            sample_pairs=1_500,
        )

    @pytest.mark.parametrize("lo,hi", [(0.5, 1.0), (0.0, 0.4), (0.2, 0.8)])
    def test_columnar_equals_legacy_loop(self, index, lo, hi):
        queries = [index.store.get(sid) for sid in sorted(index.sids)[:6]]
        queries.append(frozenset({"unseen", "elements"}))
        queries.append(frozenset())

        assert index.columnar_verify
        before = index.io.snapshot()
        columnar = index.query_batch(queries, lo, hi)
        columnar_delta = index.io.snapshot() - before

        index.columnar_verify = False
        try:
            before = index.io.snapshot()
            legacy = index.query_batch(queries, lo, hi)
            legacy_delta = index.io.snapshot() - before
        finally:
            index.columnar_verify = True

        for c, l in zip(columnar.results, legacy.results):
            assert c.answers == l.answers  # sids AND float similarities
            assert c.candidates == l.candidates
        assert columnar.io == legacy.io
        assert columnar.cpu_time == legacy.cpu_time
        assert columnar_delta == legacy_delta

    def test_single_query_path_equivalence(self, index):
        query = index.store.get(next(iter(index.sids)))
        columnar = index.query(query, 0.3, 1.0)
        index.columnar_verify = False
        try:
            legacy = index.query(query, 0.3, 1.0)
        finally:
            index.columnar_verify = True
        assert columnar.answers == legacy.answers
        assert columnar.candidates == legacy.candidates

    def test_collision_fallback_sets_still_exact(self, index, monkeypatch):
        """A set whose hashes collide silently falls back to exact
        ``frozenset`` verification and still answers correctly."""
        sid = next(iter(index.sids))
        elements = index.store.get(sid)
        # Corrupt the stored array as a collision would: shorter than
        # the set, and mark the sid for fallback.
        index._chashes[sid] = index._chashes[sid][:-1].copy()
        index._cfallback.add(sid)
        try:
            result = index.query(elements, 0.9, 1.0)
            assert any(s == sid and v == 1.0 for s, v in result.answers)
        finally:
            index._chashes[sid] = hash_set(elements)[0]
            index._cfallback.discard(sid)
