"""Cross-module integration tests: the whole pipeline, end to end."""

import numpy as np
import pytest

from repro.baselines.sequential_scan import SequentialScan
from repro.core.index import SetSimilarityIndex
from repro.core.similarity import jaccard
from repro.data.queries import QueryWorkload, ground_truth
from repro.data.weblog import make_weblog_collection


@pytest.fixture(scope="module")
def weblog_index(weblog_sets):
    return SetSimilarityIndex.build(
        weblog_sets, budget=100, recall_target=0.85, k=64, b=6, seed=4
    )


class TestPipelineQuality:
    def test_average_recall_near_target(self, weblog_index, weblog_sets):
        """The headline guarantee: measured average recall over a random
        workload tracks the construction target."""
        workload = QueryWorkload(len(weblog_sets), seed=21)
        recalls = []
        for q in workload.sample(30):
            truth = ground_truth(weblog_sets, q)
            if not truth:
                continue
            result = weblog_index.query(
                weblog_sets[q.set_index], q.sigma_low, q.sigma_high
            )
            recalls.append(len(result.answer_sids & truth) / len(truth))
        assert np.mean(recalls) > 0.75  # target 0.85 minus sampling slack

    def test_index_answers_subset_of_scan(self, weblog_index, weblog_sets):
        """ia(q) is a subset of a(q): the index never invents answers."""
        scan = SequentialScan(weblog_index.store)
        for qi in (0, 10, 50):
            q = weblog_sets[qi]
            index_result = weblog_index.query(q, 0.4, 0.9)
            scan_result = scan.query(q, 0.4, 0.9)
            assert index_result.answer_sids <= scan_result.answer_sids
            # And similarities agree exactly where both report.
            scan_sims = dict(scan_result.answers)
            for sid, sim in index_result.answers:
                assert sim == pytest.approx(scan_sims[sid])

    def test_index_beats_scan_on_narrow_queries(self):
        """The Fig. 7 shape: at realistic collection-to-budget ratios,
        high-similarity queries cost the index less than a full scan.

        Probe cost is budget-sized while scan cost is collection-sized,
        so this needs N comfortably above the table budget -- the
        paper ran 200k sets against 500-1000 tables.
        """
        sets = make_weblog_collection(n_sets=1000, seed=31)
        index = SetSimilarityIndex.build(
            sets, budget=120, recall_target=0.85, k=48, b=6, seed=5,
            sample_pairs=50_000,
        )
        scan = SequentialScan(index.store)
        index_times, scan_times = [], []
        for qi in (0, 200, 400):
            q = sets[qi]
            index_times.append(index.query(q, 0.6, 1.0).total_time)
            scan_times.append(scan.query(q, 0.6, 1.0).total_time)
        assert np.mean(index_times) < np.mean(scan_times)

    def test_plan_expectation_is_calibrated(self, weblog_index, weblog_sets):
        """Analytic expected recall should not wildly overstate reality."""
        workload = QueryWorkload(len(weblog_sets), seed=22)
        recalls = []
        for q in workload.sample(25):
            truth = ground_truth(weblog_sets, q)
            if not truth:
                continue
            result = weblog_index.query(
                weblog_sets[q.set_index], q.sigma_low, q.sigma_high
            )
            recalls.append(len(result.answer_sids & truth) / len(truth))
        assert abs(np.mean(recalls) - weblog_index.plan.expected_recall) < 0.2


class TestDynamicConsistency:
    def test_insert_visible_to_all_query_plans(self, weblog_sets):
        index = SetSimilarityIndex.build(
            weblog_sets[:80], budget=60, recall_target=0.8, k=48, seed=6
        )
        novel = frozenset(range(10**6, 10**6 + 30))
        sid = index.insert(novel)
        # High-range query (SFI path).
        assert sid in index.query_above(novel, 0.9).answer_sids
        # Low-range query from a different set (DFI or fallback path):
        # the novel set is disjoint from everything else.
        other = weblog_sets[0]
        low = index.query(other, 0.0, 1.0)
        assert sid in low.answer_sids

    def test_delete_shrinks_all_paths(self, weblog_sets):
        index = SetSimilarityIndex.build(
            weblog_sets[:80], budget=60, recall_target=0.8, k=48, seed=6
        )
        victim = 12
        target_set = weblog_sets[victim]
        index.delete(victim)
        assert victim not in index.query(target_set, 0.0, 1.0).answer_sids
        assert index.n_sets == 79

    def test_rebuild_equivalence_after_updates(self, weblog_sets):
        """An index that saw inserts answers like one built from scratch
        (up to the probabilistic filter, which is seed-identical)."""
        base = weblog_sets[:60]
        extra = weblog_sets[60:70]
        incremental = SetSimilarityIndex.build(
            base, budget=40, recall_target=0.8, k=32, seed=9
        )
        for s in extra:
            incremental.insert(s)
        q = weblog_sets[61]
        got = incremental.query(q, 0.5, 1.0)
        for sid, sim in got.answers:
            all_sets = base + extra
            assert sim == pytest.approx(jaccard(all_sets[sid], q))


class TestScaleInvariants:
    def test_collection_of_identical_sets(self):
        sets = [frozenset({1, 2, 3})] * 15
        index = SetSimilarityIndex.build(sets, budget=20, k=16, seed=1)
        result = index.query({1, 2, 3}, 0.95, 1.0)
        assert result.answer_sids == set(range(15))

    def test_collection_of_disjoint_sets(self):
        sets = [frozenset({i * 10, i * 10 + 1}) for i in range(20)]
        index = SetSimilarityIndex.build(sets, budget=20, k=16, seed=1)
        result = index.query(sets[0], 0.95, 1.0)
        assert result.answer_sids == {0}

    def test_singleton_collection(self):
        index = SetSimilarityIndex.build([{1, 2}], budget=10, k=8, seed=0)
        assert index.query({1, 2}, 0.5, 1.0).answer_sids == {0}

    def test_mixed_element_types(self):
        sets = [
            frozenset({"url/a", "url/b", "url/c"}),
            frozenset({"url/b", "url/c", "url/d"}),
            frozenset({b"raw", 42, ("tuple", 1)}),
        ]
        index = SetSimilarityIndex.build(sets, budget=10, k=16, seed=0)
        result = index.query({"url/a", "url/b", "url/c"}, 0.4, 1.0)
        assert 0 in result.answer_sids
        assert 1 in result.answer_sids
