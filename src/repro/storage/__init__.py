"""Simulated disk-resident storage engine with exact I/O accounting.

The paper's experiments (Section 6) were run against a disk-based
prototype: filter-index hash tables on disk, candidate sets fetched
through a B-tree on set identifier, and a sequential-scan baseline.
Response time there is dominated by page I/O, with random reads roughly
8x the cost of sequential reads ("rtn = ran/seq ~= 8").

We reproduce that substrate as a small storage engine whose every page
touch flows through one :class:`~repro.storage.iomodel.IOCostModel`, so
simulated response times are an exact function of page counts and the
ran/seq ratio rather than of the host machine's filesystem cache.

Components:

* :mod:`repro.storage.iomodel` -- cost model and counters.
* :mod:`repro.storage.pager` -- page allocation and access accounting.
* :mod:`repro.storage.hashtable` -- paged bucket hash table (the
  primitive both filter indices are made of).
* :mod:`repro.storage.heapfile` -- append-only record file supporting
  cheap sequential scans (the Scan baseline).
* :mod:`repro.storage.btree` -- B-tree mapping set identifiers to heap
  record ids (the paper's "conventional data structure such as a
  B-tree supporting queries on set identifier").
* :mod:`repro.storage.setstore` -- facade tying the above together for
  storing and retrieving the set collection.
"""

from repro.storage.btree import BTree
from repro.storage.extendible import ExtendibleHashTable
from repro.storage.hashtable import BucketHashTable
from repro.storage.heapfile import HeapFile
from repro.storage.iomodel import IOCostModel, IOStats
from repro.storage.pager import Page, PageManager
from repro.storage.setstore import SetStore

__all__ = [
    "BTree",
    "BucketHashTable",
    "ExtendibleHashTable",
    "HeapFile",
    "IOCostModel",
    "IOStats",
    "Page",
    "PageManager",
    "SetStore",
]
