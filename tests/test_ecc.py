"""Unit tests for the Hadamard code (Section 3.2's ecc())."""

import numpy as np
import pytest

from repro.core.ecc import HadamardCode
from repro.hamming.bitvector import unpack_bits
from repro.hamming.distance import hamming_distance


class TestCodeProperties:
    @pytest.mark.parametrize("b", [1, 2, 3, 4, 5])
    def test_all_pairwise_distances_exactly_half(self, b):
        """The defining property: every distinct pair at distance m/2."""
        code = HadamardCode(b)
        bits = code.table_bits
        for u in range(code.n_codewords):
            for v in range(u + 1, code.n_codewords):
                assert int(np.sum(bits[u] != bits[v])) == code.m // 2

    def test_b6_sampled_pairs(self):
        code = HadamardCode(6)
        rng = np.random.default_rng(0)
        for _ in range(300):
            u, v = rng.choice(64, size=2, replace=False)
            d = int(np.sum(code.table_bits[u] != code.table_bits[v]))
            assert d == 32

    def test_zero_codeword_is_zero(self):
        code = HadamardCode(4)
        assert not code.table_bits[0].any()

    def test_nonzero_codewords_balanced(self):
        """Nonzero linear functionals are balanced: weight = m/2."""
        code = HadamardCode(5)
        weights = code.table_bits[1:].sum(axis=1)
        assert np.all(weights == code.m // 2)

    def test_linearity(self):
        """c_u xor c_v == c_{u xor v} (the code is linear)."""
        code = HadamardCode(4)
        rng = np.random.default_rng(1)
        for _ in range(50):
            u, v = rng.integers(0, 16, size=2)
            lhs = code.table_bits[u] ^ code.table_bits[v]
            assert np.array_equal(lhs, code.table_bits[u ^ v])

    def test_distance_property_matches_attribute(self):
        code = HadamardCode(3)
        assert code.distance == code.m // 2 == 4

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            HadamardCode(0)
        with pytest.raises(ValueError):
            HadamardCode(17)


class TestEncoding:
    def test_encode_single_value_matches_table(self):
        code = HadamardCode(6)
        packed = code.encode(np.array([7], dtype=np.uint64))
        assert np.array_equal(unpack_bits(packed, 64), code.table_bits[7])

    def test_encode_concatenates(self):
        code = HadamardCode(6)
        values = np.array([3, 60, 0], dtype=np.uint64)
        packed = code.encode(values)
        bits = unpack_bits(packed, 3 * 64)
        for i, v in enumerate(values):
            assert np.array_equal(bits[i * 64 : (i + 1) * 64], code.table_bits[v])

    def test_values_reduced_modulo_m(self):
        code = HadamardCode(4)
        a = code.encode(np.array([5], dtype=np.uint64))
        b = code.encode(np.array([5 + 16], dtype=np.uint64))
        assert np.array_equal(a, b)

    def test_encode_many_matches_encode(self):
        code = HadamardCode(6)
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 64, size=(5, 7), dtype=np.uint64)
        batch = code.encode_many(matrix)
        for i in range(5):
            assert np.array_equal(batch[i], code.encode(matrix[i]))

    def test_small_m_path(self):
        """For m < 64 codewords pack densely across word boundaries."""
        code = HadamardCode(3)  # m = 8
        values = np.array([1, 2, 3, 4, 5, 6, 7, 0], dtype=np.uint64)  # 64 bits total
        packed = code.encode(values)
        assert packed.shape == (1,)
        bits = unpack_bits(packed, 64)
        for i, v in enumerate(values):
            assert np.array_equal(bits[i * 8 : (i + 1) * 8], code.table_bits[v])

    def test_small_m_encode_many(self):
        code = HadamardCode(2)  # m = 4
        matrix = np.array([[0, 1], [2, 3]], dtype=np.uint64)
        batch = code.encode_many(matrix)
        assert batch.shape == (2, 1)
        for i in range(2):
            assert np.array_equal(batch[i], code.encode(matrix[i]))

    def test_theorem1_distance_for_signatures(self):
        """k-value signatures agreeing on a coordinates differ by
        exactly (k - a) * m/2 bits after encoding."""
        code = HadamardCode(5)
        rng = np.random.default_rng(3)
        k = 20
        sig_a = rng.integers(0, 32, size=k, dtype=np.uint64)
        sig_b = sig_a.copy()
        disagree = [2, 7, 11]
        for i in disagree:
            sig_b[i] = (sig_b[i] + 1) % 32
        d = hamming_distance(code.encode(sig_a), code.encode(sig_b))
        assert d == len(disagree) * code.m // 2
