"""Codec format compatibility: old snapshots open, bad tags fail loudly.

The compressed-signature codecs bumped the snapshot manifest to
version 2 (adds the ``codec`` tag) and the shard manifest to version 3
(adds ``build.codec`` and ``routing.sig_scheme``).  These tests pin
the promises that bump made:

* pre-codec images -- snapshot v1, shard manifest v2, pickles without
  a ``codec`` attribute -- still open and answer identically, treated
  as ``full64``;
* an unknown codec tag raises a typed ``SnapshotFormatError`` instead
  of silently mis-decoding signature bytes;
* a manifest/embedder codec disagreement (a doctored or mixed-up
  directory) is rejected the same way.
"""

from __future__ import annotations

import json

import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.generators import planted_clusters
from repro.exec import (
    ParallelExecutor,
    ShardedExecutor,
    SnapshotFormatError,
    open_sharded,
    open_snapshot,
    save_snapshot,
    verify_snapshot,
)
from repro.exec.shard import SHARD_MANIFEST_FILE, build_sharded, verify_sharded
from repro.exec.snapfile import MANIFEST_FILE, byte_breakdown

RANGE = (0.4, 1.0)


def _sets(seed=3):
    return planted_clusters(
        n_clusters=5, per_cluster=6, base_size=18, universe=900,
        mutation_rate=0.2, seed=seed,
    )


def _build(sets, codec="full64", k=24):
    return SetSimilarityIndex.build(
        sets, budget=30, recall_target=0.8, k=k, b=4, seed=3,
        sample_pairs=2_000, codec=codec,
    )


def _save(index, path):
    snapshot = index.freeze()
    try:
        save_snapshot(snapshot, path)
    finally:
        index.thaw()


def _edit_manifest(path, mutate):
    manifest = json.loads((path / MANIFEST_FILE).read_text())
    mutate(manifest)
    (path / MANIFEST_FILE).write_text(json.dumps(manifest))


def _assert_batches_identical(got, want):
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers
        assert g.candidates == w.candidates


class TestSnapshotCompat:
    def test_manifest_records_codec(self, tmp_path):
        sets = _sets()
        _save(_build(sets, codec="bbit:2"), tmp_path / "snap")
        manifest = json.loads((tmp_path / "snap" / MANIFEST_FILE).read_text())
        assert manifest["version"] == 2
        assert manifest["codec"] == "bbit:2"

    def test_v1_manifest_without_codec_opens_as_full64(self, tmp_path):
        """A pre-codec snapshot (v1, no codec key) must behave unchanged."""
        sets = _sets()
        index = _build(sets)
        _save(index, tmp_path / "snap")

        def to_v1(manifest):
            manifest["version"] = 1
            del manifest["codec"]

        _edit_manifest(tmp_path / "snap", to_v1)
        mapped = open_snapshot(tmp_path / "snap")
        assert mapped.embedder.codec == "full64"
        verify_snapshot(tmp_path / "snap")
        queries = [sets[0], sets[7], sets[19]]
        want = index.query_batch(queries, *RANGE)
        with ParallelExecutor(mapped, workers=2) as ex:
            _assert_batches_identical(ex.query_batch(queries, *RANGE), want)

    @pytest.mark.parametrize("codec", ["full64", "bbit:2", "superminhash"])
    def test_roundtrip_answers_identical(self, tmp_path, codec):
        sets = _sets()
        index = _build(sets, codec=codec)
        _save(index, tmp_path / "snap")
        queries = [sets[0], sets[11]]
        want = index.query_batch(queries, *RANGE)
        with ParallelExecutor(open_snapshot(tmp_path / "snap"), workers=2) as ex:
            _assert_batches_identical(ex.query_batch(queries, *RANGE), want)

    def test_unknown_codec_tag_fails_loudly(self, tmp_path):
        sets = _sets()
        _save(_build(sets), tmp_path / "snap")
        _edit_manifest(
            tmp_path / "snap", lambda m: m.update(codec="zstd")
        )
        with pytest.raises(SnapshotFormatError, match="zstd"):
            open_snapshot(tmp_path / "snap")

    def test_manifest_embedder_codec_mismatch_fails(self, tmp_path):
        """A doctored manifest must not silently re-tag signature bytes."""
        sets = _sets()
        _save(_build(sets), tmp_path / "snap")
        _edit_manifest(
            tmp_path / "snap", lambda m: m.update(codec="bbit:2")
        )
        with pytest.raises(SnapshotFormatError, match="codec"):
            open_snapshot(tmp_path / "snap")

    def test_byte_breakdown_accounting(self, tmp_path):
        """Groups partition the total; bbit shrinks only signatures."""
        sets = _sets()
        k = 32  # multiple of every slots-per-word
        _save(_build(sets, codec="full64", k=k), tmp_path / "full")
        _save(_build(sets, codec="bbit:2", k=k), tmp_path / "bbit")
        full = byte_breakdown(
            json.loads((tmp_path / "full" / MANIFEST_FILE).read_text())
        )
        bbit = byte_breakdown(
            json.loads((tmp_path / "bbit" / MANIFEST_FILE).read_text())
        )
        for report in (full, bbit):
            assert sum(report["groups"].values()) == report["total_bytes"]
            assert report["n_sets"] == len(sets)
        assert full["codec"] == "full64" and bbit["codec"] == "bbit:2"
        # m=16 bits/slot at b=4 vs 2 bits/slot: 8x smaller signatures.
        assert (
            full["groups"]["signatures"] == 8 * bbit["groups"]["signatures"]
        )
        assert bbit["groups"]["verify_csr"] == full["groups"]["verify_csr"]
        assert bbit["signature_bytes_per_set"] == 2 * k // 8


class TestShardCompat:
    def _build_sharded(self, tmp_path, sets, codec="full64"):
        return build_sharded(
            sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=8,
            budget=16, sample_pairs=500, codec=codec,
        )

    def test_manifest_records_codec_and_scheme(self, tmp_path):
        sets = _sets(seed=8)
        manifest = self._build_sharded(tmp_path, sets, codec="bbit:2")
        assert manifest["version"] == 3
        assert manifest["build"]["codec"] == "bbit:2"
        assert manifest["routing"]["sig_scheme"] == "minhash"

    def test_v2_manifest_without_codec_opens_as_full64(self, tmp_path):
        """Pre-codec shard directories (manifest v2) answer unchanged."""
        sets = _sets(seed=8)
        self._build_sharded(tmp_path, sets)
        queries = [sets[0], sets[13]]
        with ShardedExecutor(open_sharded(tmp_path / "s")) as ex:
            want = ex.query_batch(queries, *RANGE)

        manifest_path = tmp_path / "s" / SHARD_MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 2
        del manifest["build"]["codec"]
        if manifest.get("routing"):
            del manifest["routing"]["sig_scheme"]
        manifest_path.write_text(json.dumps(manifest))

        verify_sharded(tmp_path / "s")
        sharded = open_sharded(tmp_path / "s")
        if sharded.routing is not None:
            assert sharded.routing.sig_scheme == "minhash"
        with ShardedExecutor(sharded) as ex:
            _assert_batches_identical(ex.query_batch(queries, *RANGE), want)

    def test_unknown_build_codec_fails_loudly(self, tmp_path):
        sets = _sets(seed=8)
        self._build_sharded(tmp_path, sets)
        manifest_path = tmp_path / "s" / SHARD_MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["build"]["codec"] = "zstd"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotFormatError, match="zstd"):
            open_sharded(tmp_path / "s")

    def test_codec_round_trip_through_shards(self, tmp_path):
        """Compressed shards answer with exact (verified) similarities."""
        sets = _sets(seed=8)
        self._build_sharded(tmp_path, sets, codec="superminhash+bbit:2")
        sharded = open_sharded(tmp_path / "s")
        assert sharded.manifest["build"]["codec"] == "superminhash+bbit:2"
        with ShardedExecutor(sharded) as ex:
            batch = ex.query_batch([sets[0]], *RANGE)
        answers = batch.results[0].answers
        assert answers
        for _, sim in answers:
            assert RANGE[0] <= sim <= RANGE[1]
