"""Packed bit-vector representation.

Embedded set signatures are long binary strings (``D = m * k`` bits,
typically several thousand).  We store them packed into ``uint64``
words, 64 bits per word, using the convention that bit ``j`` of a
vector lives at word ``j // 64``, position ``j % 64`` (little-endian
within the word):

    bit(v, j) == (words[j // 64] >> (j % 64)) & 1

All helpers accept either a single packed vector (1-d ``uint64`` array)
or a packed matrix (2-d array, one row per vector).
"""

from __future__ import annotations

import numpy as np

#: Number of bits stored per machine word.
WORD_BITS = 64

_WORD_DTYPE = np.uint64


def n_words(n_bits: int) -> int:
    """Number of uint64 words needed to store ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an array of 0/1 values into uint64 words.

    ``bits`` may be 1-d (a single vector of ``n`` bits, returning shape
    ``(n_words(n),)``) or 2-d (``N`` vectors of ``n`` bits each,
    returning shape ``(N, n_words(n))``).

    Padding guarantee: for widths that are not a multiple of 64, the
    unused high bits of the tail word are **zero**.  Masked-popcount
    kernels (:mod:`repro.hamming.distance`, including the b-bit slot
    variants) and :func:`complement` rely on this -- padding cancels
    under XOR only because every producer zeroes it.
    """
    bits = np.asarray(bits)
    if bits.ndim not in (1, 2):
        raise ValueError(f"bits must be 1-d or 2-d, got ndim={bits.ndim}")
    single = bits.ndim == 1
    if single:
        bits = bits[np.newaxis, :]
    n = bits.shape[1]
    width = n_words(n)
    padded = np.zeros((bits.shape[0], width * WORD_BITS), dtype=np.uint64)
    padded[:, :n] = bits.astype(np.uint64) & np.uint64(1)
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    grouped = padded.reshape(bits.shape[0], width, WORD_BITS)
    words = np.bitwise_or.reduce(grouped << shifts, axis=2)
    tail = n % WORD_BITS
    if tail:
        assert not np.any(
            words[..., -1] >> np.uint64(tail)
        ), "pack_bits tail-word padding must be zero"
    return words[0] if single else words


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand words back into 0/1 bytes."""
    words = np.asarray(words, dtype=_WORD_DTYPE)
    single = words.ndim == 1
    if single:
        words = words[np.newaxis, :]
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (words[:, :, np.newaxis] >> shifts) & np.uint64(1)
    bits = bits.reshape(words.shape[0], -1)[:, :n_bits].astype(np.uint8)
    return bits[0] if single else bits


def complement(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Bitwise complement of a packed vector/matrix of ``n_bits`` bits.

    Padding bits beyond ``n_bits`` are kept at zero so that popcount
    based distance computations stay exact (Theorem 2 relies on the
    complemented query having exactly the opposite bit in every *valid*
    position).
    """
    words = np.asarray(words, dtype=_WORD_DTYPE)
    flipped = ~words
    tail = n_bits % WORD_BITS
    if tail:
        mask = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
        flipped = flipped.copy()
        flipped[..., -1] &= mask
    return flipped


def get_bit(words: np.ndarray, position: int) -> int:
    """Read a single bit of a packed vector."""
    word = int(words[position // WORD_BITS])
    return (word >> (position % WORD_BITS)) & 1


def set_bit(words: np.ndarray, position: int, value: int) -> None:
    """Write a single bit of a packed vector in place."""
    index = position // WORD_BITS
    mask = np.uint64(1) << np.uint64(position % WORD_BITS)
    if value:
        words[index] |= mask
    else:
        words[index] &= ~mask
