"""Stateful property tests: structures vs oracle models under random
operation sequences (hypothesis RuleBasedStateMachine)."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.index import SetSimilarityIndex
from repro.core.similarity import jaccard
from repro.storage.btree import BTree
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager

element_sets = st.frozensets(st.integers(0, 60), min_size=1, max_size=12)


class IndexMachine(RuleBasedStateMachine):
    """Insert/delete/query an index; answers must be a (verified)
    subset of brute force, and exact-match queries must self-hit."""

    @initialize()
    def setup(self):
        seed_sets = [frozenset({i, i + 1, i + 2}) for i in range(0, 30, 3)]
        self.index = SetSimilarityIndex.build(
            seed_sets, budget=20, recall_target=0.7, k=16, b=5, seed=1
        )
        self.model: dict[int, frozenset] = dict(enumerate(seed_sets))

    @rule(elements=element_sets)
    def insert(self, elements):
        sid = self.index.insert(elements)
        assert sid not in self.model
        self.model[sid] = frozenset(elements)

    @rule(data=st.data())
    def delete_some(self, data):
        if not self.model:
            return
        sid = data.draw(st.sampled_from(sorted(self.model)))
        self.index.delete(sid)
        del self.model[sid]

    @rule(data=st.data(), low=st.floats(0.0, 1.0), high=st.floats(0.0, 1.0))
    def query_range(self, data, low, high):
        if not self.model:
            return
        low, high = sorted((low, high))
        sid = data.draw(st.sampled_from(sorted(self.model)))
        query_set = self.model[sid]
        result = self.index.query(query_set, low, high)
        truth = {
            other
            for other, stored in self.model.items()
            if low <= jaccard(stored, query_set) <= high
        }
        # No hallucinated answers, correct similarities, truth-subset.
        assert result.answer_sids <= truth
        for other, similarity in result.answers:
            assert similarity == jaccard(self.model[other], query_set)
        # The query's own (identical) set always collides in every table.
        if high == 1.0:
            assert sid in result.answer_sids

    @invariant()
    def sizes_agree(self):
        assert self.index.n_sets == len(self.model)
        assert self.index.sids == set(self.model)


class BTreeMachine(RuleBasedStateMachine):
    """B-tree vs dict under interleaved inserts/deletes/searches."""

    @initialize()
    def setup(self):
        self.tree = BTree(PageManager(IOCostModel()), min_degree=2)
        self.model: dict[int, int] = {}

    @rule(key=st.integers(0, 50), value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(data=st.data())
    def delete_existing(self, data):
        if not self.model:
            return
        key = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.delete(key)
        del self.model[key]

    @rule(key=st.integers(0, 50))
    def search(self, key):
        if key in self.model:
            assert self.tree.search(key) == self.model[key]
        else:
            assert key not in self.tree

    @rule(low=st.integers(0, 50), high=st.integers(0, 50))
    def range_scan(self, low, high):
        low, high = sorted((low, high))
        got = list(self.tree.range_scan(low, high))
        expected = sorted(
            (k, v) for k, v in self.model.items() if low <= k <= high
        )
        assert got == expected

    @invariant()
    def count_agrees(self):
        assert self.tree.n_keys == len(self.model)


TestIndexMachine = IndexMachine.TestCase
TestIndexMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)

TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
