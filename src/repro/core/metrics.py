"""Result-quality metrics: precision and recall (Section 5 definitions).

The paper borrows precision and recall from Information Retrieval:
recall measures how *accurate* the index is (what fraction of the true
answer it returns), precision how *efficient* (what fraction of the
work it does is useful).  Because final verification is exact, the
returned answer never contains out-of-range sets; precision is
therefore measured against the *candidate* set the filters produced,
matching how the paper's plots behave (precision degrades as filters
pull in more candidates than the answer needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class QueryQuality:
    """Precision/recall of one query against ground truth."""

    recall: float
    precision: float
    n_answers: int
    n_candidates: int
    n_truth: int


def evaluate_query(
    answer_sids: Iterable[int],
    candidate_sids: Iterable[int],
    truth_sids: Iterable[int],
) -> QueryQuality:
    """Score one query.

    ``recall = |answers & truth| / |truth|`` (1 when the truth is
    empty); ``precision = |answers & truth| / |candidates|`` (1 when no
    candidates were fetched).
    """
    answers = set(answer_sids)
    candidates = set(candidate_sids)
    truth = set(truth_sids)
    hit = len(answers & truth)
    recall = 1.0 if not truth else hit / len(truth)
    precision = 1.0 if not candidates else hit / len(candidates)
    return QueryQuality(
        recall=recall,
        precision=precision,
        n_answers=len(answers),
        n_candidates=len(candidates),
        n_truth=len(truth),
    )


def average(values: Iterable[float]) -> float:
    """Mean of a possibly empty sequence (0.0 when empty)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
